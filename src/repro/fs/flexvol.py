"""FlexVol volumes: virtualized WAFL file systems inside an aggregate.

A FlexVol's data has "both a physical VBN to specify the physical
location of the block and a virtual VBN to specify the block's offset
within the FlexVol" (paper section 2.1); write allocation assigns both.
Virtual VBN assignment has no effect on physical layout — its objective
is purely to colocate allocations in the number space so that few
bitmap-metafile blocks are consulted and updated (section 2.5), which
is why FlexVols use RAID-agnostic AAs with the HBPS cache.

The client-visible surface is a flat *logical block* space (modeling
the LUNs/files the benchmarks write to).  The volume keeps two maps:

* ``l2v`` — logical block -> virtual VBN (the file tree, collapsed);
* ``v2p`` — virtual VBN -> physical VBN (the container file).

A client overwrite allocates a fresh (virtual, physical) pair and
frees the previous pair — the COW behaviour that makes "random
overwrites create worst-case fragmentation" (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmap.metafile import BitmapMetafile
from ..core.delayed_frees import DelayedFreeLog
from ..common.config import SimConfig
from ..common.constants import RAID_AGNOSTIC_AA_BLOCKS
from ..common.errors import AllocationError, MediaError, TransientIOError
from ..core.aa import LinearAATopology
from ..core.allocator import LinearAllocator
from ..core.score import ScoreKeeper
from ..core.cache import CacheSource
from ..core.hbps_cache import RAIDAgnosticAACache
from .aggregate import PolicyKind, StoreCPReport, _make_linear_source

__all__ = ["FlexVol", "VolSpec"]


@dataclass
class VolSpec:
    """Static description of a FlexVol for the simulator builders."""

    name: str
    #: Client-addressable logical blocks.
    logical_blocks: int
    #: Virtual VBN space size; defaults to 1.5x logical rounded up to a
    #: whole number of AAs (thin-provisioned headroom so delayed frees
    #: never starve the virtual space).
    virtual_blocks: int | None = None
    blocks_per_aa: int = RAID_AGNOSTIC_AA_BLOCKS
    #: Declared workload hint ("mixed", "oltp", "sequential",
    #: "archive") — the tier chooser's prior when placing the volume
    #: on a heterogeneous aggregate (see :mod:`repro.tiering`).
    workload: str = "mixed"

    def resolve_virtual_blocks(self) -> int:
        if self.virtual_blocks is not None:
            return self.virtual_blocks
        want = int(self.logical_blocks * 1.5) + self.blocks_per_aa
        return -(-want // self.blocks_per_aa) * self.blocks_per_aa


class FlexVol:
    """One live FlexVol: virtual VBN space, maps, AA cache, allocator."""

    def __init__(
        self,
        spec: VolSpec,
        *,
        policy: PolicyKind = PolicyKind.CACHE,
        config: SimConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        cfg = config if config is not None else SimConfig.default()
        self._batch_flush = not cfg.allocator.scalar_bitmap_flush
        nblocks = spec.resolve_virtual_blocks()
        self.topology = LinearAATopology(nblocks, spec.blocks_per_aa)
        self.metafile = BitmapMetafile(nblocks)
        self.delayed_frees = DelayedFreeLog()
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)
        self.source, self.cache = _make_linear_source(
            policy, self.topology, self.metafile, self.keeper, seed
        )
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            batch_flush=self._batch_flush,
        )
        #: logical block -> virtual VBN (-1 = never written).
        self.l2v = np.full(spec.logical_blocks, -1, dtype=np.int64)
        #: virtual VBN -> physical VBN (-1 = unmapped).
        self.v2p = np.full(nblocks, -1, dtype=np.int64)
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        #: When set, each CP applies delayed frees for at most this many
        #: metafile blocks, chosen fullest-first (HBPS-prioritized, the
        #: paper's "delayed-free scores"); None = apply all.
        self.free_budget_blocks: int | None = None
        #: Snapshots: name -> virtual VBNs captured (COW pinning).
        self._snapshots: dict[str, np.ndarray] = {}
        #: Union mask over the virtual space of snapshot-held VBNs;
        #: overwrites and deletes of held blocks defer their frees to
        #: snapshot deletion (the mass-free source the paper notes adds
        #: to free-space nonuniformity, section 4.1.1).
        self._snap_mask = np.zeros(nblocks, dtype=bool)
        #: Iron/faults addressing label (matches Iron's ``where``).
        self.where = f"vol:{spec.name}"
        #: Attached :class:`repro.faults.FaultInjector` (None = no faults).
        self.injector = None
        #: True while allocation runs on the direct bitmap walk.
        self.degraded_alloc = False

    # ------------------------------------------------------------------
    @property
    def nblocks(self) -> int:
        """Virtual VBN space size."""
        return self.topology.nblocks

    @property
    def used_blocks(self) -> int:
        """Mapped (live) virtual blocks (including the allocator's
        pending-span batch not yet reflected in the bitmap)."""
        return self.metafile.bitmap.allocated_count + self.allocator.pending_count

    def lookup_physical(self, logical_ids: np.ndarray) -> np.ndarray:
        """Physical VBNs backing mapped logical blocks (reads path);
        unmapped logical blocks are skipped."""
        v = self.l2v[np.asarray(logical_ids, dtype=np.int64)]
        v = v[v >= 0]
        return self.v2p[v]

    # ------------------------------------------------------------------
    # CP write path (driven by the CP engine)
    # ------------------------------------------------------------------
    def stage_writes(self, logical_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Allocate virtual VBNs for the given (deduplicated) logical
        blocks and collect the old mappings to free.

        Returns ``(new_virtual, old_virtual, old_physical)``; the engine
        pairs ``new_virtual`` with freshly allocated physical VBNs via
        :meth:`commit_writes`.
        """
        logical_ids = np.asarray(logical_ids, dtype=np.int64)
        n = int(logical_ids.size)
        new_v = self.allocator.allocate(n)
        if new_v.size < n:
            raise AllocationError(
                f"FlexVol {self.name}: virtual VBN space exhausted "
                f"({new_v.size} of {n} allocated)"
            )
        old_v = self.l2v[logical_ids]
        old_v = old_v[old_v >= 0]
        # Snapshot-held blocks are not freed on overwrite: the snapshot
        # still references them (COW pinning).
        free_v = old_v[~self._snap_mask[old_v]]
        old_p = self.v2p[free_v]
        return new_v, free_v, old_p

    def commit_writes(
        self,
        logical_ids: np.ndarray,
        new_virtual: np.ndarray,
        new_physical: np.ndarray,
        old_virtual: np.ndarray,
    ) -> None:
        """Install new mappings and log the old virtual VBNs as delayed
        frees (the engine logs the old physical VBNs with the store)."""
        logical_ids = np.asarray(logical_ids, dtype=np.int64)
        self.l2v[logical_ids] = new_virtual
        self.v2p[new_virtual] = new_physical
        if old_virtual.size:
            self.v2p[old_virtual] = -1
            self.delayed_frees.add(old_virtual)

    # ------------------------------------------------------------------
    # Snapshots (extension; paper sections 1 and 4.1.1)
    # ------------------------------------------------------------------
    @property
    def snapshot_names(self) -> tuple[str, ...]:
        """Names of existing snapshots."""
        return tuple(self._snapshots)

    def create_snapshot(self, name: str) -> int:
        """Capture the volume's current contents.

        WAFL snapshots are (nearly) free at creation: they pin the
        blocks mapped right now, so subsequent overwrites and deletes
        keep those blocks allocated.  Returns the block count pinned.
        """
        if name in self._snapshots:
            raise AllocationError(f"snapshot {name!r} already exists on {self.name}")
        held = self.l2v[self.l2v >= 0].copy()
        self._snapshots[name] = held
        self._snap_mask[held] = True
        return int(held.size)

    def delete_snapshot(self, name: str) -> np.ndarray:
        """Delete a snapshot, freeing blocks no longer referenced.

        Returns the *physical* VBNs released (the caller logs them with
        the store); the virtual VBNs enter this volume's delayed-free
        log.  This is the bulk internal freeing whose "nonuniformity"
        the AA cache exploits (paper section 4.1.1).
        """
        if name not in self._snapshots:
            raise AllocationError(f"no snapshot {name!r} on {self.name}")
        held = self._snapshots.pop(name)
        # Rebuild the union mask from the remaining snapshots.
        self._snap_mask[:] = False
        # Each `other` is an index *array*: this is one fancy-index
        # scatter per snapshot, not an element-at-a-time loop.
        for other in self._snapshots.values():  # simlint: disable=B502
            self._snap_mask[other] = True
        # A held block is freed iff the active file system no longer
        # maps it and no remaining snapshot pins it.
        active = np.zeros(self.nblocks, dtype=bool)
        live = self.l2v[self.l2v >= 0]
        active[live] = True
        to_free = held[~active[held] & ~self._snap_mask[held]]
        if to_free.size == 0:
            return np.empty(0, dtype=np.int64)
        old_p = self.v2p[to_free].copy()
        self.v2p[to_free] = -1
        self.delayed_frees.add(to_free)
        return old_p

    # ------------------------------------------------------------------
    # Fault injection and degraded mode (:mod:`repro.faults`)
    # ------------------------------------------------------------------
    def attach_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this volume's
        metafile read path."""
        self.injector = injector

    def read_metafile(self, nblocks: int | None = None) -> int:
        """Fault-aware bitmap-metafile read (cache rebuild walks, scrub).

        A FlexVol's metafile blocks live inside the aggregate, whose
        RAID layer reconstructs ordinary latent sector errors
        transparently; only damage RAID could not fix surfaces here.
        Armed transient faults raise :class:`TransientIOError` (callers
        retry with backoff); armed unreconstructable damage raises
        :class:`MediaError`, escalating to Iron.
        """
        n = nblocks if nblocks is not None else self.metafile.metafile_block_count
        inj = self.injector
        if inj is not None:
            if inj.consume(self.where, "transient-read"):
                raise TransientIOError(f"{self.where}: transient metafile read failure")
            if inj.consume(self.where, "unreconstructable"):
                raise MediaError(
                    f"{self.where}: metafile blocks damaged beyond RAID "
                    f"reconstruction"
                )
        return self.metafile.note_scan_read(n)

    def enter_degraded(self) -> None:
        """Serve allocations from a direct bitmap walk while the AA
        cache is offline (being rebuilt after damage).  The current AA
        is released; no allocation fails while degraded."""
        from ..core.policies import BitmapWalkSource

        self.allocator.release()
        self.source = BitmapWalkSource(self.topology, self.metafile)
        self.cache = None
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            batch_flush=self._batch_flush,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.degraded_alloc = True

    def adopt_cache(self, cache: RAIDAgnosticAACache) -> None:
        """Install a freshly built (possibly TopAA-seeded) HBPS cache
        after a remount (see :meth:`RAIDGroupRuntime.adopt_cache` for
        the score-keeper caveat)."""
        self.cache = cache
        self.keeper = ScoreKeeper(self.topology, self.metafile.bitmap)

        def replenisher() -> np.ndarray:
            self.metafile.note_scan_read()
            return self.topology.scores_from_bitmap(self.metafile.bitmap)

        self.source = CacheSource(cache, replenisher)
        self.allocator = LinearAllocator(
            self.topology, self.metafile, self.source, self.keeper,
            batch_flush=self._batch_flush,
        )
        self._last_cache_ops = 0
        self._last_aa_switches = 0
        self._last_spans = 0
        self.degraded_alloc = False

    def stage_deletes(self, logical_ids: np.ndarray) -> np.ndarray:
        """Unmap the given logical blocks (file deletion): their virtual
        VBNs are logged as delayed frees and the backing physical VBNs
        are returned for the engine to free with the store."""
        logical_ids = np.asarray(logical_ids, dtype=np.int64)
        old_v = self.l2v[logical_ids]
        mapped_ids = logical_ids[old_v >= 0]
        old_v = old_v[old_v >= 0]
        if old_v.size == 0:
            return np.empty(0, dtype=np.int64)
        self.l2v[mapped_ids] = -1
        free_v = old_v[~self._snap_mask[old_v]]
        if free_v.size == 0:
            return np.empty(0, dtype=np.int64)
        old_p = self.v2p[free_v].copy()
        self.v2p[free_v] = -1
        self.delayed_frees.add(free_v)
        return old_p

    # ------------------------------------------------------------------
    def cp_boundary(self) -> StoreCPReport:
        """Volume-side CP boundary: apply delayed virtual frees, flush
        score deltas into the AA cache, drain metafile dirty counts.
        (Virtual VBNs have no device cost; only metadata accounting.)"""
        report = StoreCPReport()
        # Sync the allocator's pending span before applying frees: a
        # same-CP write-then-delete frees a just-allocated VBN, whose
        # bit must be set before the free clears it.
        self.allocator.flush_pending()
        if self.free_budget_blocks is None:
            freed = self.delayed_frees.apply_all(self.metafile)
        else:
            freed = self.delayed_frees.apply_best(
                self.metafile, self.free_budget_blocks
            )
        if freed.size:
            self.keeper.note_free(freed)
            report.blocks_freed = int(freed.size)
        self.allocator.cp_flush()
        report.metafile_blocks = self.metafile.drain_dirty()
        ops = 0
        if self.cache is not None:
            ops = self.cache.maintenance_ops
        report.cache_ops = ops - self._last_cache_ops
        self._last_cache_ops = ops
        switches = len(self.allocator.selected_aa_scores)
        report.aa_switches = switches - self._last_aa_switches
        self._last_aa_switches = switches
        report.spanned_blocks = self.allocator.spanned_blocks - self._last_spans
        self._last_spans = self.allocator.spanned_blocks
        return report

    def selected_aa_free_fractions(self) -> np.ndarray:
        """Free fraction of each AA at selection time (section 4.1.2's
        78% vs 61% trace)."""
        cap = self.topology.aa_blocks
        return np.asarray(
            [s / cap for s in self.allocator.selected_aa_scores], dtype=np.float64
        )

    def verify_consistency(self) -> None:
        """Test hook: maps and bitmaps must agree exactly."""
        mapped_v = self.l2v[self.l2v >= 0]
        if mapped_v.size != np.unique(mapped_v).size:
            raise AllocationError(f"FlexVol {self.name}: duplicate virtual mappings")
        for held in self._snapshots.values():
            if held.size and not bool(np.all(self.metafile.bitmap.test(held))):
                raise AllocationError(
                    f"FlexVol {self.name}: snapshot-held virtual VBN not allocated"
                )
        # Every mapped virtual VBN must be allocated in the bitmap and
        # point at a physical block; pending delayed frees account for
        # the rest.
        if mapped_v.size and not bool(np.all(self.metafile.bitmap.test(mapped_v))):
            raise AllocationError(f"FlexVol {self.name}: mapped virtual VBN not allocated")
        if mapped_v.size and bool(np.any(self.v2p[mapped_v] < 0)):
            raise AllocationError(f"FlexVol {self.name}: mapped virtual VBN lacks physical")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlexVol(name={self.name!r}, logical={self.spec.logical_blocks}, "
            f"virtual={self.nblocks}, used={self.used_blocks})"
        )
