"""WaflSim: the whole-system simulator facade.

Ties together a physical store (RAID groups or object store), a set of
FlexVols, the CP engine, and the metrics log, and provides the
builder functions the examples and benchmarks share.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..common.config import SimConfig
from ..common.errors import GeometryError
from ..common.rng import make_rng
from ..devices.objectstore import ObjectStoreConfig
from ..sim.cpu import CpuModel
from ..sim.stats import CPStats, MetricsLog
from .aggregate import (
    LinearStore,
    PolicyKind,
    RAIDGroupConfig,
    RAIDStore,
)
from .cp import CPBatch, CPEngine
from .flexvol import FlexVol, VolSpec

__all__ = ["WaflSim"]


class WaflSim:
    """A running WAFL-like system: store + volumes + CP engine.

    Most users construct one via :meth:`build_raid` /
    :meth:`build_object` and drive it with a workload iterator from
    :mod:`repro.workloads`.
    """

    def __init__(
        self,
        store,
        vols: dict[str, FlexVol],
        *,
        cpu_model: CpuModel | None = None,
    ) -> None:
        self.store = store
        self.vols = vols
        self.metrics = MetricsLog()
        self.engine = CPEngine(store, vols, cpu_model=cpu_model, metrics=self.metrics)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build_raid(
        cls,
        group_configs: list[RAIDGroupConfig],
        vol_specs: list[VolSpec],
        *,
        aggregate_policy: PolicyKind = PolicyKind.CACHE,
        vol_policy: PolicyKind = PolicyKind.CACHE,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        """Aggregate backed by RAID groups of HDDs, SSDs, or SMR drives.

        ``aggregate_policy`` and ``vol_policy`` select AA caches or
        baselines independently — the four quadrants of Figure 6.
        Tunables come from ``config`` (default :meth:`SimConfig.default`).
        """
        rng = make_rng(seed)
        store = RAIDStore(
            group_configs,
            policy=aggregate_policy,
            config=config,
            seed=rng,
        )
        vols = {
            spec.name: FlexVol(spec, policy=vol_policy, config=config, seed=rng)
            for spec in vol_specs
        }
        cls._check_capacity(store.nblocks, vol_specs)
        return cls(store, vols, cpu_model=cpu_model)

    @classmethod
    def build_object(
        cls,
        nblocks: int,
        vol_specs: list[VolSpec],
        *,
        aggregate_policy: PolicyKind = PolicyKind.CACHE,
        vol_policy: PolicyKind = PolicyKind.CACHE,
        object_config: ObjectStoreConfig | None = None,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        """Aggregate backed by a natively redundant object store
        (RAID-agnostic AAs on the physical side too)."""
        rng = make_rng(seed)
        store = LinearStore(
            nblocks,
            policy=aggregate_policy,
            object_config=object_config,
            config=config,
            seed=rng,
        )
        vols = {
            spec.name: FlexVol(spec, policy=vol_policy, config=config, seed=rng)
            for spec in vol_specs
        }
        cls._check_capacity(nblocks, vol_specs)
        return cls(store, vols, cpu_model=cpu_model)

    @staticmethod
    def _check_capacity(phys_blocks: int, vol_specs: list[VolSpec]) -> None:
        logical = sum(s.logical_blocks for s in vol_specs)
        if logical > phys_blocks:
            raise GeometryError(
                f"volumes address {logical} blocks but the aggregate has "
                f"only {phys_blocks} (thin provisioning cannot exceed the "
                f"physically written working set)"
            )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, workload: Iterable[CPBatch], n_cps: int) -> list[CPStats]:
        """Run ``n_cps`` consistency points from the workload iterator."""
        out: list[CPStats] = []
        it: Iterator[CPBatch] = iter(workload)
        for _ in range(n_cps):
            try:
                batch = next(it)
            except StopIteration:
                break
            out.append(self.engine.run_cp(batch))
        return out

    def run_until(self, workload: Iterable[CPBatch], predicate, max_cps: int = 100000) -> int:
        """Run CPs until ``predicate(self)`` is true; returns CPs run."""
        it = iter(workload)
        for i in range(max_cps):
            if predicate(self):
                return i
            self.engine.run_cp(next(it))
        return max_cps

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Fraction of physical blocks in use."""
        total = self.store.nblocks
        return (total - self.store.free_count) / total

    @property
    def total_logical_blocks(self) -> int:
        return sum(v.spec.logical_blocks for v in self.vols.values())

    def vol(self, name: str) -> FlexVol:
        return self.vols[name]

    def set_free_budget(self, metafile_blocks: int | None) -> None:
        """Budget delayed-free application per CP (HBPS-prioritized).

        With a budget, each CP frees at most ``metafile_blocks`` worth
        of logged frees per file-system instance, choosing the metafile
        blocks with the most pending frees first — the paper's
        "delayed-free scores" use of HBPS.  ``None`` restores full
        per-CP application.
        """
        for vol in self.vols.values():
            vol.free_budget_blocks = metafile_blocks
        store = self.store
        if hasattr(store, "groups"):
            for g in store.groups:
                g.free_budget_blocks = metafile_blocks
        else:
            store.free_budget_blocks = metafile_blocks

    # ------------------------------------------------------------------
    # Snapshots (extension)
    # ------------------------------------------------------------------
    def create_snapshot(self, vol_name: str, snap_name: str) -> int:
        """Snapshot a volume; returns the blocks pinned."""
        return self.vols[vol_name].create_snapshot(snap_name)

    def delete_snapshot(self, vol_name: str, snap_name: str) -> int:
        """Delete a snapshot; the released blocks enter the delayed-free
        logs and are applied at the next CP boundary.  Returns the
        number of physical blocks released."""
        freed_p = self.vols[vol_name].delete_snapshot(snap_name)
        self.store.log_free(freed_p)
        return int(freed_p.size)

    def verify_consistency(self) -> None:
        """Cross-check every volume's maps and every keeper against the
        bitmaps (test hook; expensive)."""
        for v in self.vols.values():
            v.verify_consistency()
            if v.delayed_frees.pending_count == 0:
                v.keeper.verify_against(v.metafile.bitmap)
        if isinstance(self.store, RAIDStore):
            for g in self.store.groups:
                if g.delayed_frees.pending_count == 0:
                    g.keeper.verify_against(g.metafile.bitmap)
        elif isinstance(self.store, LinearStore):
            if self.store.delayed_frees.pending_count == 0:
                self.store.keeper.verify_against(self.store.metafile.bitmap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaflSim(store_blocks={self.store.nblocks}, vols={len(self.vols)}, "
            f"utilization={self.utilization:.1%})"
        )
