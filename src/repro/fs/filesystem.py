"""WaflSim: the whole-system simulator facade.

Ties together a physical store (RAID groups or object store), a set of
FlexVols, the CP engine, and the metrics log, and provides the
builder functions the examples and benchmarks share.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Iterable, Iterator

import numpy as np

from ..common.config import AggregateSpec, SimConfig, TierSpec
from ..common.constants import RAID_AGNOSTIC_AA_BLOCKS
from ..common.errors import GeometryError
from ..common.rng import make_rng
from ..devices.objectstore import ObjectStoreConfig
from ..devices.smr import SMRConfig
from ..devices.ssd import SSDConfig
from ..sim.cpu import CpuModel
from ..sim.stats import CPStats, MetricsLog
from .aggregate import (
    LinearStore,
    MediaType,
    PolicyKind,
    RAIDGroupConfig,
    RAIDStore,
)
from .cp import CPBatch, CPEngine
from .flexvol import FlexVol, VolSpec

__all__ = ["WaflSim"]


def _tier_group_configs(tier: TierSpec) -> list[RAIDGroupConfig]:
    """RAID group configs for one declared (non-object) tier."""
    ssd_cfg = None
    if tier.media == "ssd" and (tier.erase_block_blocks or tier.program_us_per_block):
        kwargs: dict = {}
        if tier.erase_block_blocks:
            kwargs["erase_block_blocks"] = tier.erase_block_blocks
        if tier.program_us_per_block:
            kwargs["program_us_per_block"] = tier.program_us_per_block
        ssd_cfg = SSDConfig(**kwargs)
    smr_cfg = None
    if tier.media == "smr" and (tier.zone_blocks or tier.rewrite_penalty_us):
        kwargs = {}
        if tier.zone_blocks:
            kwargs["zone_blocks"] = tier.zone_blocks
        if tier.rewrite_penalty_us:
            kwargs["rewrite_penalty_us"] = tier.rewrite_penalty_us
        smr_cfg = SMRConfig(**kwargs)
    return [
        RAIDGroupConfig(
            ndata=tier.ndata,
            nparity=tier.nparity,
            blocks_per_disk=tier.blocks_per_disk,
            media=MediaType(tier.media),
            mirrored=tier.raid == "mirror",
            stripes_per_aa=tier.stripes_per_aa or None,
            azcs=tier.azcs,
            ssd_config=ssd_cfg,
            smr_config=smr_cfg,
        )
        for _ in range(tier.n_groups)
    ]


def _vol_specs(spec: AggregateSpec) -> list[VolSpec]:
    """Translate the spec's volume declarations into builder VolSpecs."""
    return [
        VolSpec(
            v.name,
            logical_blocks=v.logical_blocks,
            virtual_blocks=v.virtual_blocks or None,
            blocks_per_aa=v.blocks_per_aa or RAID_AGNOSTIC_AA_BLOCKS,
            workload=v.workload,
        )
        for v in spec.volumes
    ]


class WaflSim:
    """A running WAFL-like system: store + volumes + CP engine.

    Most users construct one via :meth:`build` from a declarative
    :class:`~repro.common.config.AggregateSpec` and drive it with a
    workload iterator from :mod:`repro.workloads`.
    """

    def __init__(
        self,
        store,
        vols: dict[str, FlexVol],
        *,
        cpu_model: CpuModel | None = None,
    ) -> None:
        self.store = store
        self.vols = vols
        self.metrics = MetricsLog()
        self.engine = CPEngine(store, vols, cpu_model=cpu_model, metrics=self.metrics)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        spec: AggregateSpec,
        *,
        object_config: ObjectStoreConfig | None = None,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        """Construct a simulator from a declarative aggregate spec.

        One entry point for every backing-store shape:

        * one RAID tier — a plain :class:`RAIDStore` (HDD/SSD/SMR
          groups, RAID 4 / RAID-DP / mirrored);
        * one object tier — a :class:`LinearStore`;
        * several tiers — a :class:`repro.tiering.TieredStore`
          composing one member store per tier in a single aggregate
          VBN space, with the per-volume tier chooser attached.

        ``spec.policy`` / ``spec.vol_policy`` select AA caches or
        baselines independently — the four quadrants of Figure 6.
        Tunables come from ``config`` (default :meth:`SimConfig.default`).
        """
        agg_policy = PolicyKind(spec.policy)
        vol_policy = PolicyKind(spec.vol_policy)
        vol_specs = _vol_specs(spec)
        if len(spec.tiers) > 1:
            # repro.tiering sits far above fs in the layer DAG, so the
            # multi-tier path binds to it at call time only.
            tiering = importlib.import_module("repro.tiering")
            rng = make_rng(seed)
            store = tiering.make_tiered_store(
                spec, policy=agg_policy, config=config,
                object_config=object_config, seed=rng,
            )
            vols = {
                s.name: FlexVol(s, policy=vol_policy, config=config, seed=rng)
                for s in vol_specs
            }
            cls._check_capacity(
                store.nblocks, vol_specs,
                by_tier={t.label: t.physical_blocks for t in spec.tiers},
            )
            return cls(store, vols, cpu_model=cpu_model)
        tier = spec.tiers[0]
        if tier.media == "object":
            return cls._build_object(
                tier.nblocks,
                vol_specs,
                blocks_per_aa=tier.blocks_per_aa,
                aggregate_policy=agg_policy,
                vol_policy=vol_policy,
                object_config=object_config,
                config=config,
                cpu_model=cpu_model,
                seed=seed,
            )
        return cls._build_raid(
            _tier_group_configs(tier),
            vol_specs,
            aggregate_policy=agg_policy,
            vol_policy=vol_policy,
            config=config,
            cpu_model=cpu_model,
            seed=seed,
        )

    @classmethod
    def _build_raid(
        cls,
        group_configs: list[RAIDGroupConfig],
        vol_specs: list[VolSpec],
        *,
        aggregate_policy: PolicyKind = PolicyKind.CACHE,
        vol_policy: PolicyKind = PolicyKind.CACHE,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        rng = make_rng(seed)
        store = RAIDStore(
            group_configs,
            policy=aggregate_policy,
            config=config,
            seed=rng,
        )
        kinds = set(store.media_kinds)
        if MediaType.SSD in kinds and len(kinds) > 1:
            # Flash Pool (paper section 2.1): a mixed SSD + capacity
            # aggregate places hot overwrites on its SSD groups.  The
            # policy is stateless, so attaching it stays byte-identical.
            store.tier_policy = importlib.import_module(
                "repro.tiering"
            ).FlashPoolPolicy()
        vols = {
            spec.name: FlexVol(spec, policy=vol_policy, config=config, seed=rng)
            for spec in vol_specs
        }
        cls._check_capacity(store.nblocks, vol_specs)
        return cls(store, vols, cpu_model=cpu_model)

    @classmethod
    def _build_object(
        cls,
        nblocks: int,
        vol_specs: list[VolSpec],
        *,
        blocks_per_aa: int = RAID_AGNOSTIC_AA_BLOCKS,
        aggregate_policy: PolicyKind = PolicyKind.CACHE,
        vol_policy: PolicyKind = PolicyKind.CACHE,
        object_config: ObjectStoreConfig | None = None,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        rng = make_rng(seed)
        store = LinearStore(
            nblocks,
            blocks_per_aa=blocks_per_aa,
            policy=aggregate_policy,
            object_config=object_config,
            config=config,
            seed=rng,
        )
        vols = {
            spec.name: FlexVol(spec, policy=vol_policy, config=config, seed=rng)
            for spec in vol_specs
        }
        cls._check_capacity(nblocks, vol_specs)
        return cls(store, vols, cpu_model=cpu_model)

    @classmethod
    def build_raid(
        cls,
        group_configs: list[RAIDGroupConfig],
        vol_specs: list[VolSpec],
        *,
        aggregate_policy: PolicyKind = PolicyKind.CACHE,
        vol_policy: PolicyKind = PolicyKind.CACHE,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        """Deprecated: use :meth:`build` with an
        :class:`~repro.common.config.AggregateSpec`.  Kept for one
        release; byte-identical to the equivalent :meth:`build` call.
        """
        warnings.warn(
            "WaflSim.build_raid is deprecated; use "
            "WaflSim.build(AggregateSpec(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls._build_raid(
            group_configs,
            vol_specs,
            aggregate_policy=aggregate_policy,
            vol_policy=vol_policy,
            config=config,
            cpu_model=cpu_model,
            seed=seed,
        )

    @classmethod
    def build_object(
        cls,
        nblocks: int,
        vol_specs: list[VolSpec],
        *,
        aggregate_policy: PolicyKind = PolicyKind.CACHE,
        vol_policy: PolicyKind = PolicyKind.CACHE,
        object_config: ObjectStoreConfig | None = None,
        config: SimConfig | None = None,
        cpu_model: CpuModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "WaflSim":
        """Deprecated: use :meth:`build` with an
        :class:`~repro.common.config.AggregateSpec` declaring one
        object tier.  Kept for one release; byte-identical to the
        equivalent :meth:`build` call."""
        warnings.warn(
            "WaflSim.build_object is deprecated; use "
            "WaflSim.build(AggregateSpec(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls._build_object(
            nblocks,
            vol_specs,
            aggregate_policy=aggregate_policy,
            vol_policy=vol_policy,
            object_config=object_config,
            config=config,
            cpu_model=cpu_model,
            seed=seed,
        )

    @staticmethod
    def _check_capacity(
        phys_blocks: int,
        vol_specs: list[VolSpec],
        by_tier: dict[str, int] | None = None,
    ) -> None:
        logical = sum(s.logical_blocks for s in vol_specs)
        if logical > phys_blocks:
            detail = ""
            if by_tier:
                parts = ", ".join(f"{t}={n}" for t, n in by_tier.items())
                detail = f"; per-tier capacity: {parts}"
            raise GeometryError(
                f"volumes address {logical} blocks but the aggregate has "
                f"only {phys_blocks} (thin provisioning cannot exceed the "
                f"physically written working set){detail}"
            )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, workload: Iterable[CPBatch], n_cps: int) -> list[CPStats]:
        """Run ``n_cps`` consistency points from the workload iterator."""
        out: list[CPStats] = []
        it: Iterator[CPBatch] = iter(workload)
        for _ in range(n_cps):
            try:
                batch = next(it)
            except StopIteration:
                break
            out.append(self.engine.run_cp(batch))
        return out

    def run_until(self, workload: Iterable[CPBatch], predicate, max_cps: int = 100000) -> int:
        """Run CPs until ``predicate(self)`` is true; returns CPs run."""
        it = iter(workload)
        for i in range(max_cps):
            if predicate(self):
                return i
            self.engine.run_cp(next(it))
        return max_cps

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Fraction of physical blocks in use."""
        total = self.store.nblocks
        return (total - self.store.free_count) / total

    @property
    def total_logical_blocks(self) -> int:
        return sum(v.spec.logical_blocks for v in self.vols.values())

    def vol(self, name: str) -> FlexVol:
        return self.vols[name]

    def set_free_budget(self, metafile_blocks: int | None) -> None:
        """Budget delayed-free application per CP (HBPS-prioritized).

        With a budget, each CP frees at most ``metafile_blocks`` worth
        of logged frees per file-system instance, choosing the metafile
        blocks with the most pending frees first — the paper's
        "delayed-free scores" use of HBPS.  ``None`` restores full
        per-CP application.
        """
        for vol in self.vols.values():
            vol.free_budget_blocks = metafile_blocks
        for _, fs, _ in self.store.physical_instances():
            fs.free_budget_blocks = metafile_blocks

    # ------------------------------------------------------------------
    # Snapshots (extension)
    # ------------------------------------------------------------------
    def create_snapshot(self, vol_name: str, snap_name: str) -> int:
        """Snapshot a volume; returns the blocks pinned."""
        return self.vols[vol_name].create_snapshot(snap_name)

    def delete_snapshot(self, vol_name: str, snap_name: str) -> int:
        """Delete a snapshot; the released blocks enter the delayed-free
        logs and are applied at the next CP boundary.  Returns the
        number of physical blocks released."""
        freed_p = self.vols[vol_name].delete_snapshot(snap_name)
        self.store.log_free(freed_p)
        return int(freed_p.size)

    def verify_consistency(self) -> None:
        """Cross-check every volume's maps and every keeper against the
        bitmaps (test hook; expensive)."""
        for v in self.vols.values():
            v.verify_consistency()
            if v.delayed_frees.pending_count == 0:
                v.keeper.verify_against(v.metafile.bitmap)
        for _, fs, _ in self.store.physical_instances():
            if fs.delayed_frees.pending_count == 0:
                fs.keeper.verify_against(fs.metafile.bitmap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaflSim(store_blocks={self.store.nblocks}, vols={len(self.vols)}, "
            f"utilization={self.utilization:.1%})"
        )
