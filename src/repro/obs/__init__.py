"""Structured tracing/observability: spans, counters, exports, audits.

Quick start::

    from repro import obs

    tracer = obs.install()            # enable tracing
    ...  # run a simulation
    print("\n".join(obs.report.span_tree_lines(tracer.records())))
    chrome_json = obs.export.to_chrome(tracer.records())
    obs.uninstall()

Instrumented modules call ``obs.span(...)`` / ``obs.count(...)``
unconditionally; with no tracer installed both are near-free no-ops.
See ``repro trace --help`` for the CLI front end.
"""

from . import export, report
from .tracer import (
    Span,
    SpanRecord,
    Tracer,
    active,
    advance_us,
    count,
    get_tracer,
    install,
    install_tracer,
    iter_records,
    set_cp,
    span,
    sync_us,
    uninstall,
)

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "active",
    "advance_us",
    "count",
    "export",
    "get_tracer",
    "install",
    "install_tracer",
    "iter_records",
    "report",
    "set_cp",
    "span",
    "sync_us",
    "uninstall",
]
