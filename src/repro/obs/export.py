"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

Both exporters are pure functions of the record list and serialize
with ``sort_keys=True`` and explicit separators, so a traced run with
a fixed seed exports byte-identical output across reruns (the
determinism tests rely on this).

Chrome format reference: the "Trace Event Format" document —
complete events (``"ph": "X"``) carry ``ts``/``dur`` in microseconds,
counter events (``"ph": "C"``) plot ``args`` values over time.  Open
the file at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .tracer import KIND_COUNTER, KIND_SPAN, SpanRecord

__all__ = ["to_jsonl", "to_chrome", "chrome_events"]


def to_jsonl(records: Iterable[SpanRecord]) -> str:
    """One JSON object per line, in record (seq) order."""
    lines = [
        json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
        for r in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_events(records: Iterable[SpanRecord]) -> list[dict[str, Any]]:
    """Records as Chrome ``traceEvents`` dicts."""
    events: list[dict[str, Any]] = []
    for r in records:
        args: dict[str, Any] = dict(r.tags)
        args["cp"] = r.cp
        if r.kind == KIND_SPAN:
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": r.ts_us,
                    "dur": r.dur_us,
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
        elif r.kind == KIND_COUNTER:
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "C",
                    "ts": r.ts_us,
                    "pid": 0,
                    "tid": 0,
                    "args": {r.name: r.value, **args},
                }
            )
    return events


def to_chrome(records: Iterable[SpanRecord]) -> str:
    """Full Chrome trace JSON document (``traceEvents`` wrapper)."""
    doc = {
        "traceEvents": chrome_events(records),
        "displayTimeUnit": "ms",
        "metadata": {"format": "repro-trace/1"},
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))
