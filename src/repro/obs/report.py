"""Per-CP span trees and CPStats reconciliation.

The tracer's counters intentionally double-count what ``CPStats``
already counts: every traced block total must equal the counted one.
:func:`reconcile` cross-checks the two per CP and returns human-
readable mismatch strings (empty list = reconciled); the invariant
auditor folds these into its violation report so a drifting
instrumentation site fails the audit, not just the trace.

Only CPs whose ``cp.begin`` sentinel survived ring-buffer eviction
are reconciled: the ring evicts FIFO, so the sentinel (always the
first record of a CP) being present guarantees the CP's records are
complete.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .tracer import KIND_COUNTER, KIND_SPAN, SpanRecord, Tracer

__all__ = [
    "RECONCILED_COUNTERS",
    "CP_SENTINEL",
    "span_tree_lines",
    "cp_counter_totals",
    "complete_cps",
    "reconcile",
    "reconcile_current_cp",
]

#: Sentinel counter emitted as the first record of every traced CP.
CP_SENTINEL = "cp.begin"

#: ``counter name -> CPStats attribute`` pairs that must agree exactly.
RECONCILED_COUNTERS: dict[str, str] = {
    "cp.virtual_blocks": "virtual_blocks",
    "cp.physical_blocks": "physical_blocks",
    "cp.blocks_freed": "blocks_freed",
    "cp.metafile_blocks": "metafile_blocks_dirtied",
    "cp.cache_ops": "cache_ops",
    "cp.aa_switches": "aa_switches",
    "cp.spanned_blocks": "spanned_blocks",
}


def cp_counter_totals(
    records: Iterable[SpanRecord],
) -> dict[int, dict[str, float]]:
    """Per-CP counter sums: ``{cp_index: {counter_name: total}}``."""
    totals: dict[int, dict[str, float]] = {}
    for r in records:
        if r.kind != KIND_COUNTER:
            continue
        per_cp = totals.setdefault(r.cp, {})
        per_cp[r.name] = per_cp.get(r.name, 0.0) + r.value
    return totals


def complete_cps(records: Iterable[SpanRecord]) -> set[int]:
    """CP indices whose ``cp.begin`` sentinel is present (no eviction)."""
    return {
        r.cp
        for r in records
        if r.kind == KIND_COUNTER and r.name == CP_SENTINEL
    }


def span_tree_lines(
    records: Sequence[SpanRecord], *, cp: int | None = None
) -> list[str]:
    """Render span records as an indented tree, one CP per section.

    Spans nest by their recorded ``depth``; counters are folded into
    per-CP totals shown beneath the tree.
    """
    spans = [r for r in records if r.kind == KIND_SPAN]
    if cp is not None:
        spans = [r for r in spans if r.cp == cp]
    totals = cp_counter_totals(records)

    lines: list[str] = []
    current_cp: int | None = None
    for r in sorted(spans, key=lambda r: r.seq):
        if r.cp != current_cp:
            current_cp = r.cp
            lines.append(f"CP {current_cp}:")
        indent = "  " * (r.depth + 1)
        tag_str = ""
        if r.tags:
            tag_str = " " + " ".join(f"{k}={v}" for k, v in r.tags)
        lines.append(f"{indent}{r.name} {r.dur_us:.1f}us{tag_str}")
    # Counter totals per CP, appended after the trees for readability.
    for cp_index in sorted(totals):
        if cp is not None and cp_index != cp:
            continue
        per_cp = totals[cp_index]
        interesting = {
            k: v for k, v in per_cp.items() if k != CP_SENTINEL
        }
        if not interesting:
            continue
        lines.append(f"CP {cp_index} counters:")
        for name in sorted(interesting):
            lines.append(f"  {name} = {interesting[name]:g}")
    return lines


def _check_one(
    counters: dict[str, float], stats, cp_index: int
) -> list[str]:
    problems: list[str] = []
    for counter_name, attr in RECONCILED_COUNTERS.items():
        traced = counters.get(counter_name, 0.0)
        counted = float(getattr(stats, attr))
        if traced != counted:
            problems.append(
                f"CP {cp_index}: traced {counter_name} = {traced:g} but "
                f"CPStats.{attr} = {counted:g}"
            )
    return problems


def reconcile(
    records: Sequence[SpanRecord], cps: Sequence
) -> list[str]:
    """Cross-check traced counter totals against ``CPStats`` records.

    ``cps`` is a sequence of :class:`~repro.sim.stats.CPStats`.  Only
    CPs present in both the trace (with an intact sentinel) and the
    stats log are compared.  Returns mismatch descriptions.
    """
    totals = cp_counter_totals(records)
    intact = complete_cps(records)
    by_index = {c.cp_index: c for c in cps}
    problems: list[str] = []
    for cp_index in sorted(intact):
        stats = by_index.get(cp_index)
        if stats is None:
            continue
        problems.extend(
            _check_one(totals.get(cp_index, {}), stats, cp_index)
        )
    return problems


def reconcile_current_cp(tracer: Tracer, stats) -> list[str]:
    """Reconcile the tracer's running totals against one CPStats.

    O(number of counters): used by the invariant auditor's ``after_cp``
    hook, which runs inside the CP loop and cannot afford a ring walk.
    """
    if tracer.cp != stats.cp_index:
        return []
    return _check_one(tracer._cp_totals, stats, stats.cp_index)
