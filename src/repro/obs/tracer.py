"""Structured tracer: nested spans + typed counters, zero-cost when off.

The tracer is a process-global singleton installed with
:func:`install` and removed with :func:`uninstall`.  Instrumentation
sites call the module-level helpers:

    from repro import obs

    with obs.span("cp.allocate", vol=name, blocks=n):
        ...
    obs.count("cp.physical_blocks", written, where="group:0")

When no tracer is installed, :func:`span` returns a shared no-op
context manager and :func:`count` returns immediately — the disabled
cost is one global load and a ``None`` check, measured under 2% of
any bench unit (see ``tests/obs/test_overhead.py``).

Timestamps come from a deterministic simulated clock advanced by the
instrumented code itself (``advance_us``/``sync_us``), never from wall
clocks, so a traced run is byte-identical across reruns with the same
seed.  Records land in a bounded ring buffer; when it fills, the
oldest records are evicted FIFO and ``dropped`` counts them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..common.config import ObsConfig

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "install",
    "install_tracer",
    "uninstall",
    "active",
    "get_tracer",
    "span",
    "count",
    "advance_us",
    "sync_us",
    "set_cp",
]

#: Record kinds stored in the ring buffer.
KIND_SPAN = "span"
KIND_COUNTER = "counter"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span or counter sample in the ring buffer."""

    kind: str
    name: str
    cp: int
    seq: int
    ts_us: float
    dur_us: float
    depth: int
    value: float
    tags: tuple[tuple[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "cp": self.cp,
            "seq": self.seq,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "depth": self.depth,
            "value": self.value,
        }
        if self.tags:
            d["tags"] = dict(self.tags)
        return d


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """An open span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "seq", "start_us", "depth", "tags")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        seq: int,
        start_us: float,
        depth: int,
        tags: tuple[tuple[str, Any], ...],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.seq = seq
        self.start_us = start_us
        self.depth = depth
        self.tags = tags

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._close_span(self)


@dataclass
class Tracer:
    """Bounded ring buffer of span/counter records on a sim clock."""

    config: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        self.clock_us: float = 0.0
        self.dropped: int = 0
        self._seq: int = 0
        self._cp: int = -1
        self._depth: int = 0
        self._ring: deque[SpanRecord] = deque(maxlen=self.config.ring_capacity)
        # Running per-CP counter totals, reset at each set_cp(); lets
        # the auditor reconcile the *current* CP in O(counters) without
        # walking the ring.
        self._cp_totals: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Clock + CP association
    # ------------------------------------------------------------------
    def advance_us(self, us: float) -> None:
        """Advance the trace clock by a simulated duration."""
        self.clock_us += us

    def sync_us(self, us: float) -> None:
        """Fast-forward the clock to an external sim clock (monotonic)."""
        if us > self.clock_us:
            self.clock_us = us

    def set_cp(self, cp_index: int) -> None:
        """Associate subsequent records with CP ``cp_index``."""
        self._cp = cp_index
        self._cp_totals = {}

    @property
    def cp(self) -> int:
        return self._cp

    @property
    def cp_totals(self) -> dict[str, float]:
        """Counter sums observed since the last ``set_cp``."""
        return dict(self._cp_totals)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **tags: Any) -> Span:
        seq = self._seq
        self._seq += 1
        sp = Span(
            self,
            name,
            seq,
            self.clock_us,
            self._depth,
            tuple(sorted(tags.items())),
        )
        self._depth += 1
        return sp

    def _close_span(self, sp: Span) -> None:
        self._depth -= 1
        self._append(
            SpanRecord(
                kind=KIND_SPAN,
                name=sp.name,
                cp=self._cp,
                seq=sp.seq,
                ts_us=sp.start_us,
                dur_us=self.clock_us - sp.start_us,
                depth=sp.depth,
                value=0.0,
                tags=sp.tags,
            )
        )

    def count(self, name: str, value: float = 1, **tags: Any) -> None:
        seq = self._seq
        self._seq += 1
        self._cp_totals[name] = self._cp_totals.get(name, 0.0) + value
        self._append(
            SpanRecord(
                kind=KIND_COUNTER,
                name=name,
                cp=self._cp,
                seq=seq,
                ts_us=self.clock_us,
                dur_us=0.0,
                depth=self._depth,
                value=float(value),
                tags=tuple(sorted(tags.items())),
            )
        )

    def _append(self, rec: SpanRecord) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(rec)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        """Ring contents ordered by record ``seq`` (span-open order)."""
        return sorted(self._ring, key=lambda r: r.seq)

    def __len__(self) -> int:
        return len(self._ring)


# ----------------------------------------------------------------------
# Module-level singleton API (the hot path)
# ----------------------------------------------------------------------
_active: Tracer | None = None


def install(config: ObsConfig | None = None) -> Tracer:
    """Install (and return) a fresh global tracer."""
    global _active
    _active = Tracer(config if config is not None else ObsConfig())
    return _active


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install a specific (possibly subclassed) tracer instance.

    Returns the previously active tracer so callers can restore it —
    the crash-point registry swaps a :class:`Tracer` subclass in around
    one CP and puts the old one back afterwards.  Passing ``None``
    uninstalls.
    """
    global _active
    prev = _active
    _active = tracer
    return prev


def uninstall() -> None:
    """Remove the global tracer; instrumentation reverts to no-ops."""
    global _active
    _active = None


def active() -> bool:
    """True when a tracer is installed."""
    return _active is not None


def get_tracer() -> Tracer | None:
    return _active


def span(name: str, **tags: Any) -> Span | _NullSpan:
    """Open a nested span (no-op context manager when disabled)."""
    t = _active
    if t is None:
        return _NULL_SPAN
    return t.span(name, **tags)


def count(name: str, value: float = 1, **tags: Any) -> None:
    """Record a typed counter sample (no-op when disabled)."""
    t = _active
    if t is None:
        return
    t.count(name, value, **tags)


def advance_us(us: float) -> None:
    """Advance the trace clock (no-op when disabled)."""
    t = _active
    if t is not None:
        t.clock_us += us


def sync_us(us: float) -> None:
    """Fast-forward the trace clock to ``us`` (no-op when disabled)."""
    t = _active
    if t is not None and us > t.clock_us:
        t.clock_us = us


def set_cp(cp_index: int) -> None:
    """Tag subsequent records with a CP index (no-op when disabled)."""
    t = _active
    if t is not None:
        t.set_cp(cp_index)


def iter_records() -> Iterator[SpanRecord]:
    """Records of the active tracer (empty when disabled)."""
    t = _active
    if t is None:
        return iter(())
    return iter(t.records())
