"""Static and runtime verification for the reproduction codebase.

* :mod:`repro.analysis.simlint` — AST lint rules (determinism,
  layering, unit safety, error hygiene); ``repro lint``.
* :mod:`repro.analysis.auditor` — CP-time whole-system invariant
  auditor; ``repro audit`` and ``pytest --audit``.
* :mod:`repro.analysis.rules` — the rule catalogue and the enforced
  package DAG.
* :mod:`repro.analysis.flow` — whole-program dataflow passes
  (interprocedural determinism taint, unit typestate, commit-path
  effects, seed threading); ``repro lint --deep``.

This package sits at the top of the dependency DAG: it may import
everything, nothing imports it.
"""

from .auditor import (
    AuditReport,
    InvariantAuditor,
    Violation,
    arm_global,
    audit_sim,
    disarm_global,
)
from .flow import DeepFinding, DeepReport, FlowConfig, deep_lint
from .rules import FLOW_RULES, LAYER_RANK, RULES, Rule
from .simlint import Finding, format_findings, lint_file, lint_paths, lint_source

__all__ = [
    "DeepFinding",
    "DeepReport",
    "FlowConfig",
    "deep_lint",
    "FLOW_RULES",
    "AuditReport",
    "InvariantAuditor",
    "Violation",
    "arm_global",
    "audit_sim",
    "disarm_global",
    "LAYER_RANK",
    "RULES",
    "Rule",
    "Finding",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
]
