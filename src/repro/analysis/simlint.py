"""simlint: AST-based static analysis with codebase-specific rules.

The rules (catalogue in :mod:`repro.analysis.rules`) encode properties
the paper's evaluation depends on but Python cannot enforce by itself:
determinism of every hot path (D), an acyclic package DAG (L), unit
discipline between ``*_bytes``/``*_blocks``/``*_us`` quantities (U),
and error hygiene (E).

Usage::

    from repro.analysis import lint_paths
    findings = lint_paths(["src/repro"])

or from the command line: ``repro lint src/repro``.

Waivers: append ``# simlint: disable=D104`` to the offending line, or
put ``# simlint: disable-file=D104`` on its own comment line to waive a
rule for a whole module.  Waivers name specific rules; there is no
blanket disable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .rules import (
    COMMITTED_IMAGE_ATTRS,
    HOT_PATH_PACKAGES,
    LAYER_RANK,
    REPRO_ERROR_NAMES,
    RULES,
    TIER_ROLE_LITERALS,
    UNIT_SUFFIXES,
    WALL_CLOCK_CALLS,
)

__all__ = ["Finding", "lint_source", "lint_file", "lint_paths", "format_findings"]

#: Rank assigned to modules outside the package DAG (``repro.cli``,
#: ``repro/__init__`` ...): above everything, so ranked packages may
#: not import them.
_TOP_RANK = 99

_PRAGMA_LINE = re.compile(r"#\s*simlint:\s*disable=([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)")
_PRAGMA_FILE = re.compile(r"#\s*simlint:\s*disable-file=([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)")

#: Legacy ``numpy.random`` module-level (global-state) entry points.
_NP_RANDOM_LEGACY = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "binomial",
        "poisson",
        "exponential",
    }
)

_UNIT_BY_WORD = {suffix.lstrip("_"): suffix for suffix in UNIT_SUFFIXES}

#: ``numpy.<tail>`` callables whose result B502 treats as an ndarray.
#: Deliberately conservative: only constructors/transforms that always
#: return arrays, so a tracked name is an array with high confidence.
_NP_ARRAY_CTORS = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "array",
        "asarray",
        "ascontiguousarray",
        "arange",
        "linspace",
        "concatenate",
        "stack",
        "frombuffer",
        "fromiter",
        "where",
        "cumsum",
        "sort",
        "argsort",
        "maximum",
        "minimum",
        "repeat",
        "tile",
        "copy",
        "diff",
        "empty_like",
        "zeros_like",
        "ones_like",
        "full_like",
        "add.accumulate",
        "maximum.accumulate",
        "minimum.accumulate",
    }
)


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suffix_of(name: str) -> str | None:
    for suffix in UNIT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return suffix
    return None


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    """Single-pass visitor applying every rule family."""

    def __init__(self, path: str, package: str | None,
                 subpackages: tuple[str, ...] | None = None) -> None:
        self.path = path
        self.package = package
        #: Full package chain under ``repro`` (("analysis", "flow") for
        #: repro/analysis/flow/symbols.py); resolves relative imports
        #: from nested subpackages correctly.
        self.subpackages = (
            subpackages if subpackages is not None
            else ((package,) if package is not None else ())
        )
        self.findings: list[Finding] = []
        #: local alias -> canonical dotted origin ("np" -> "numpy").
        self.aliases: dict[str, str] = {}
        #: stack of scopes mapping names known to hold sets.
        self.set_scopes: list[set[str]] = [set()]
        #: ``self.<attr>`` names known to hold sets (module-wide).
        self.set_attrs: set[str] = set()
        #: stack of scopes mapping names known to hold ndarrays (B502).
        self.array_scopes: list[set[str]] = [set()]
        #: ``self.<attr>`` names known to hold ndarrays (module-wide).
        self.array_attrs: set[str] = set()

    # -- helpers -------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0), message)
        )

    def _canonical(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    # -- imports: aliases, D101, L201 ----------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            root = alias.name.split(".")[0]
            if root == "random":
                self._emit("D101", node, RULES["D101"].summary)
            if root == "repro":
                self._check_layering(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{module}.{alias.name}"
            if module.split(".")[0] == "random":
                self._emit("D101", node, RULES["D101"].summary)
            if module.split(".")[0] == "repro":
                if module == "repro":
                    # ``from repro import obs``: each imported name is
                    # the actual target package.
                    for alias in node.names:
                        self._check_layering(node, f"repro.{alias.name}")
                else:
                    self._check_layering(node, module)
        else:
            target = self._resolve_relative(node)
            if target == "repro":
                # ``from .. import obs``: ditto, per-name targets.
                for alias in node.names:
                    self._check_layering(node, f"repro.{alias.name}")
            elif target is not None:
                self._check_layering(node, target)
        self.generic_visit(node)

    def _resolve_relative(self, node: ast.ImportFrom) -> str | None:
        """Absolute ``repro.<pkg>`` target of a relative import, from the
        linted module's own package position."""
        if self.package is None:
            # Top-level module: ``from . import x`` reaches siblings;
            # top modules are unconstrained.
            return None
        # ``level`` dots climb the package chain: level 1 stays in the
        # containing package, each further dot drops one component.
        # From repro/analysis/flow/x.py, ``from ..rules import`` has
        # level 2 over chain ("analysis", "flow") -> base ("analysis",)
        # -> repro.analysis.rules, which is still package 'analysis'.
        base = self.subpackages[: len(self.subpackages) - (node.level - 1)]
        if base:
            return f"repro.{base[0]}"
        first = (node.module or "").split(".")[0]
        return f"repro.{first}" if first else "repro"

    def _check_layering(self, node: ast.AST, target_module: str) -> None:
        if self.package is None:
            return
        source_rank = LAYER_RANK.get(self.package)
        if source_rank is None:
            return
        parts = target_module.split(".")
        target_pkg = parts[1] if len(parts) > 1 and parts[0] == "repro" else None
        if target_pkg is None:
            # ``import repro`` / ``from repro import x``: the root
            # package re-exports high-level names; treat as top.
            target_rank = _TOP_RANK
            target_pkg = "repro"
        elif target_pkg == self.package:
            return
        else:
            target_rank = LAYER_RANK.get(target_pkg, _TOP_RANK)
        if target_rank >= source_rank:
            self._emit(
                "L201",
                node,
                f"package '{self.package}' (rank {source_rank}) may not import "
                f"'{target_pkg}' (rank {target_rank}); the DAG is "
                + " -> ".join(sorted(LAYER_RANK, key=LAYER_RANK.__getitem__)),
            )

    # -- calls: D101/D102/D103, D104 consumers, U301 conversions -------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            canonical = self._canonical(dotted)
            self._check_rng_call(node, canonical)
            self._check_clock_call(node, canonical)
            self._check_unpackbits(node, canonical)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and self.package is not None
        ):
            # Top-level modules (cli.py, __main__) have package None and
            # are the sanctioned user-facing output sites.
            self._emit("E404", node, RULES["E404"].summary)
        if self.package != "tiering":
            for kw in node.keywords:
                if (
                    kw.arg == "tier"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    self._emit(
                        "T701", kw.value,
                        f"{RULES['T701'].summary}: tier={kw.value.value!r}; "
                        f"pass a repro.tiering.Tier member",
                    )
        func_name = dotted.split(".")[-1] if dotted else None
        if func_name in {"list", "tuple", "enumerate", "iter"}:
            for arg in node.args:
                if self._is_set_expr(arg):
                    self._emit(
                        "D104",
                        arg,
                        f"{RULES['D104'].summary} (materialized via {func_name}(); "
                        f"wrap the set in sorted())",
                    )
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, canonical: str) -> None:
        if canonical.split(".")[0] == "random":
            self._emit("D101", node, f"{RULES['D101'].summary}: {canonical}()")
            return
        if canonical in ("numpy.random.default_rng", "np.random.default_rng"):
            unseeded = not node.args and not node.keywords
            none_seed = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded or none_seed:
                self._emit("D102", node, RULES["D102"].summary)
            return
        parts = canonical.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("numpy", "np")
            and parts[1] == "random"
            and parts[2] in _NP_RANDOM_LEGACY
        ):
            self._emit(
                "D102", node,
                f"legacy global-state RNG call np.random.{parts[2]}(); draw from "
                f"a seeded Generator (repro.common.rng.make_rng) instead",
            )

    def _check_clock_call(self, node: ast.Call, canonical: str) -> None:
        if canonical in WALL_CLOCK_CALLS:
            self._emit("D103", node, f"{RULES['D103'].summary}: {canonical}()")

    # -- B501: unbounded bit expansion outside the bitmap layer --------
    def _check_unpackbits(self, node: ast.Call, canonical: str) -> None:
        if canonical != "numpy.unpackbits":
            return
        if Path(self.path).name == "bitmap.py":
            return  # the Bitmap class is the sanctioned expansion site
        arg = node.args[0] if node.args else None
        if (
            isinstance(arg, ast.Subscript)
            and isinstance(arg.slice, ast.Slice)
            and arg.slice.lower is not None
            and arg.slice.upper is not None
        ):
            return  # explicitly windowed [lo:hi] slice: bounded expansion
        self._emit(
            "B501", node,
            f"{RULES['B501'].summary}; use Bitmap.free_in_range/test or "
            f"slice an explicit [lo:hi] window",
        )

    # -- B502: element-at-a-time array loops in hot-path packages ------
    def _is_array_ctor(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                return False
            canonical = self._canonical(dotted)
            head, _, tail = canonical.partition(".")
            return head == "numpy" and tail in _NP_ARRAY_CTORS
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
            # A slice of a known array is still an array view.
            return self._is_array_expr(node.value)
        return False

    def _is_array_annotation(self, annotation: ast.AST | None) -> bool:
        if annotation is None:
            return False
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        name = _dotted(base)
        return name is not None and name.split(".")[-1] in ("ndarray", "NDArray")

    def _is_array_expr(self, node: ast.AST) -> bool:
        if self._is_array_ctor(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self.array_scopes)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.array_attrs
        return False

    def _record_array_binding(self, target: ast.AST, is_array: bool) -> None:
        if isinstance(target, ast.Name):
            scope = self.array_scopes[-1]
            (scope.add if is_array else scope.discard)(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            (self.array_attrs.add if is_array else self.array_attrs.discard)(
                target.attr
            )

    def _check_array_index_loop(self, node: ast.For) -> None:
        """B502: a for body subscripting a tracked ndarray with the loop
        variable is the interpreter-bound pattern the batch pipeline
        replaced; flag it only inside the hot-path packages."""
        if self.package not in HOT_PATH_PACKAGES:
            return
        loop_vars = {
            n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)
        }
        if not loop_vars:
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Subscript):
                    continue
                idx = sub.slice
                if not (isinstance(idx, ast.Name) and idx.id in loop_vars):
                    continue
                if self._is_array_expr(sub.value):
                    name = _dotted(sub.value) or "<array>"
                    self._emit(
                        "B502",
                        node,
                        f"{RULES['B502'].summary}: '{name}[{idx.id}]' "
                        f"inside this loop; batch the operation or waive "
                        f"the reference path explicitly",
                    )
                    return

    # -- D104: set bookkeeping and iteration sites ---------------------
    def _is_set_ctor(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
        return False

    def _is_set_annotation(self, annotation: ast.AST | None) -> bool:
        if annotation is None:
            return False
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        name = _dotted(base)
        return name is not None and name.split(".")[-1].lower() in ("set", "frozenset")

    def _record_binding(self, target: ast.AST, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            scope = self.set_scopes[-1]
            (scope.add if is_set else scope.discard)(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            (self.set_attrs.add if is_set else self.set_attrs.discard)(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_ctor(node.value)
        is_array = self._is_array_ctor(node.value)
        for target in node.targets:
            self._record_binding(target, is_set)
            self._record_array_binding(target, is_array)
            self._check_committed_attr(target)
        self.generic_visit(node)

    # -- C601: committed-image mutation outside the commit path --------
    def _check_committed_attr(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_committed_attr(elt)
            return
        # Both direct replacement (obj.committed = x) and structural
        # mutation (obj.committed.pages[k] = x, obj.committed[i] = x)
        # move the recovery target.
        while isinstance(target, ast.Subscript):
            target = target.value
        attr = target
        while isinstance(attr, ast.Attribute):
            if attr.attr in COMMITTED_IMAGE_ATTRS:
                if (
                    self.package == "crash"
                    and Path(self.path).name == "persistence.py"
                ):
                    return  # the sanctioned commit path
                self._emit(
                    "C601",
                    target,
                    f"{RULES['C601'].summary}: assignment to "
                    f"'.{attr.attr}' — route the change through "
                    f"PersistenceModel.commit()",
                )
                return
            attr = attr.value

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = (node.value is not None and self._is_set_ctor(node.value)) or (
            node.value is None and self._is_set_annotation(node.annotation)
        )
        if node.value is not None and not self._is_set_ctor(node.value):
            is_set = self._is_set_annotation(node.annotation) and self._is_set_ctor(
                node.value
            )
        self._record_binding(node.target, is_set or (
            node.value is not None
            and self._is_set_ctor(node.value)
        ))
        self._record_array_binding(
            node.target,
            (node.value is not None and self._is_array_ctor(node.value))
            or self._is_array_annotation(node.annotation),
        )
        self._check_aug_or_ann_units(node)
        self._check_committed_attr(node.target)
        self.generic_visit(node)

    def _is_set_expr(self, node: ast.AST) -> bool:
        if self._is_set_ctor(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self.set_scopes)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.set_attrs
        return False

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._emit(
                "D104", iter_node,
                f"{RULES['D104'].summary}; wrap it in sorted() for a stable order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self._check_array_index_loop(node)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iteration(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.set_scopes.append(set())
        self.array_scopes.append(set())
        for arg in [*node.args.args, *node.args.kwonlyargs]:
            if self._is_array_annotation(arg.annotation):
                self.array_scopes[-1].add(arg.arg)
        self.generic_visit(node)
        self.set_scopes.pop()
        self.array_scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    # -- U301: unit suffix mixing --------------------------------------
    def _unit_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return _suffix_of(node.id)
        if isinstance(node, ast.Attribute):
            return _suffix_of(node.attr)
        if isinstance(node, ast.Call):
            # ``blocks_to_bytes(x)`` and friends convert *into* the unit
            # named last; treat the converter's result as that unit.
            dotted = _dotted(node.func)
            if dotted is not None:
                tail = dotted.split(".")[-1]
                if "_to_" in tail:
                    word = tail.rsplit("_to_", 1)[1]
                    return _UNIT_BY_WORD.get(word)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self._unit_of(node.left)
            right = self._unit_of(node.right)
            if left is not None and right is not None and left == right:
                return left
        if isinstance(node, ast.UnaryOp):
            return self._unit_of(node.operand)
        return None

    def _check_unit_pair(self, node: ast.AST, a: ast.AST, b: ast.AST, op: str) -> None:
        ua, ub = self._unit_of(a), self._unit_of(b)
        if ua is not None and ub is not None and ua != ub:
            self._emit(
                "U301", node,
                f"'{op}' mixes units {ua} and {ub}; convert through "
                f"repro.common.units first",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_unit_pair(node, node.left, node.right,
                                  "+" if isinstance(node.op, ast.Add) else "-")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_unit_pair(node, node.target, node.value,
                                  "+=" if isinstance(node.op, ast.Add) else "-=")
        self._record_binding(node.target, False) if not isinstance(
            node.op, (ast.BitOr, ast.BitAnd)
        ) else None
        self._check_committed_attr(node.target)
        self.generic_visit(node)

    def _check_aug_or_ann_units(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            target_unit = self._unit_of(node.target)
            value_unit = self._unit_of(node.value)
            if (
                target_unit is not None
                and value_unit is not None
                and target_unit != value_unit
            ):
                self._emit(
                    "U301", node,
                    f"assignment binds {value_unit} value to {target_unit} name; "
                    f"convert through repro.common.units first",
                )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ordering = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
        for i, op in enumerate(node.ops):
            if isinstance(op, ordering):
                self._check_unit_pair(node, operands[i], operands[i + 1],
                                      type(op).__name__)
            if isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_tier_literal(operands[i], operands[i + 1])
        self.generic_visit(node)

    def _check_tier_literal(self, left: ast.AST, right: ast.AST) -> None:
        """T701: ``something.tier == "fast"``-style comparisons route on
        raw role names; only :mod:`repro.tiering` may spell them out."""
        if self.package == "tiering":
            return
        for lit, other in ((left, right), (right, left)):
            if not (
                isinstance(lit, ast.Constant)
                and lit.value in TIER_ROLE_LITERALS
            ):
                continue
            dotted = _dotted(other)
            if dotted is not None and "tier" in dotted.lower():
                self._emit(
                    "T701", lit,
                    f"{RULES['T701'].summary}: compared {dotted} against "
                    f"{lit.value!r}; compare against repro.tiering.Tier "
                    f"members instead",
                )

    # -- E-rules: exception hygiene ------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit("E401", node, RULES["E401"].summary)
        else:
            names = self._exception_names(node.type)
            if names & {"Exception", "BaseException"}:
                self._emit("E402", node, RULES["E402"].summary)
            elif names & REPRO_ERROR_NAMES and self._body_is_noop(node.body):
                self._emit(
                    "E403", node,
                    f"caught {', '.join(sorted(names & REPRO_ERROR_NAMES))} and "
                    f"dropped it; handle, log, or re-raise",
                )
        self.generic_visit(node)

    @staticmethod
    def _exception_names(node: ast.AST) -> set[str]:
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        names: set[str] = set()
        for expr in exprs:
            dotted = _dotted(expr)
            if dotted is not None:
                names.add(dotted.split(".")[-1])
        return names

    @staticmethod
    def _body_is_noop(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare `...`
            return False
        return True


def _pragmas(
    source: str, path: str
) -> tuple[dict[int, set[str]], set[str], list[Finding]]:
    """Per-line and file-level waivers from ``# simlint:`` pragmas,
    plus a P901 finding for every waived rule id that is not in the
    catalogue (a typo'd waiver waives nothing and hides the violation
    it meant to document)."""
    per_line: dict[int, set[str]] = {}
    file_level: set[str] = set()
    unknown: list[Finding] = []

    def note_ids(lineno: int, col: int, ids: set[str]) -> None:
        for rule_id in sorted(ids - set(RULES)):
            unknown.append(Finding(
                "P901", path, lineno, col,
                f"{RULES['P901'].summary}: '{rule_id}' is not in the "
                f"rule catalogue",
            ))

    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_FILE.search(line)
        if match:
            ids = {r.strip() for r in match.group(1).split(",")}
            note_ids(lineno, match.start(), ids)
            file_level.update(ids)
            continue
        match = _PRAGMA_LINE.search(line)
        if match:
            ids = {r.strip() for r in match.group(1).split(",")}
            note_ids(lineno, match.start(), ids)
            per_line.setdefault(lineno, set()).update(ids)
    return per_line, file_level, unknown


def _package_chain(path: Path) -> tuple[str, ...] | None:
    """The chain of repro subpackages a file sits in (("analysis",
    "flow") for repro/analysis/flow/x.py), () for top-level modules,
    None for files outside the repro tree."""
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i + 1 : -1])
    return None


def _package_of(path: Path) -> str | None:
    """The repro subpackage a file belongs to, or None for top-level
    modules (and files outside the repro tree)."""
    chain = _package_chain(path)
    return chain[0] if chain else None


def lint_source(
    source: str, path: str = "<string>", package: str | None = None,
    subpackages: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Lint one module's source; ``package`` positions it in the DAG
    (``subpackages`` gives the full nested chain when known)."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, package, subpackages)
    linter.visit(tree)
    per_line, file_level, unknown = _pragmas(source, path)
    kept = []
    for f in linter.findings + unknown:
        if f.rule in file_level or f.rule in per_line.get(f.line, set()):
            continue
        kept.append(f)
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one file, inferring its package from its location."""
    p = Path(path)
    chain = _package_chain(p)
    return lint_source(p.read_text(encoding="utf-8"), str(p),
                       chain[0] if chain else None, chain)


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint every ``*.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for entry in paths:
        p = Path(entry)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    if not findings:
        return "simlint: clean (0 findings)"
    lines = [str(f) for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items()))
    lines.append(f"simlint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)
