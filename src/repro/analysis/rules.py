"""The simlint rule catalogue and the enforced dependency DAG.

Rule identifiers are stable and documented in the README; inline
waivers use ``# simlint: disable=<rule>[,<rule>...]`` on the offending
line, or ``# simlint: disable-file=<rule>`` in the first comment block
of a module.

Rule families
-------------
* **D — determinism.**  Every experiment must be bit-for-bit
  reproducible from a seed, so hot-path code may not consult ambient
  entropy (wall clocks, unseeded generators, the stdlib ``random``
  module) or iterate Python ``set`` objects, whose order is salted per
  process.
* **L — layering.**  Packages form a strict DAG; an import reaching a
  *later* package is a leak that eventually turns into a cycle (the
  pre-existing ``bitmap -> core`` edge this linter was dogfooded on).
* **U — unit safety.**  Identifiers carry unit suffixes (``_bytes``,
  ``_blocks``, ``_us``...); additive arithmetic across different
  suffixes is a unit mix-up unless it flows through
  :mod:`repro.common.units` converters.
* **B — bitmap discipline.**  The bitmap layer's perf contract is that
  bit expansion happens behind :class:`repro.bitmap.Bitmap`, where the
  candidate-byte scan keeps searches proportional to the result, not
  the device; unbounded ``np.unpackbits`` elsewhere reintroduces the
  O(nblocks) walks the paper exists to avoid.
* **E — error hygiene.**  Bare/over-broad excepts and silently dropped
  library errors hide exactly the corruption the auditor exists to
  surface.
* **C — crash consistency.**  The committed metadata image is the
  state a crash recovers to; only the sanctioned commit path in
  :mod:`repro.crash.persistence` may replace it.
* **P — pragma hygiene.**  Waivers must name real rules; a typo in a
  ``# simlint: disable=`` pragma silently waives nothing and hides the
  violation it meant to document.
* **F — flow (interprocedural).**  The ``repro lint --deep`` passes
  (:mod:`repro.analysis.flow`) check the same properties as the D/U/C
  families but across function boundaries: determinism taint, unit
  typestate, commit-path effects, and seed threading.  They are
  catalogued separately in :data:`FLOW_RULES` because they fire from
  whole-program analysis, not from a single module's AST.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Rule",
    "RULES",
    "FLOW_RULES",
    "LAYER_RANK",
    "TIER_ROLE_LITERALS",
    "UNIT_SUFFIXES",
    "ORDER_SAFE_CONSUMERS",
    "REPRO_ERROR_NAMES",
    "WALL_CLOCK_CALLS",
    "COMMITTED_IMAGE_ATTRS",
    "HOT_PATH_PACKAGES",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable id, summary, and what it protects."""

    id: str
    summary: str
    rationale: str


RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "D101",
            "stdlib `random` module used",
            "the stdlib RNG is process-global; all randomness must flow "
            "through a seeded numpy Generator (repro.common.rng).",
        ),
        Rule(
            "D102",
            "unseeded numpy RNG (`default_rng()` with no seed, or legacy "
            "`np.random.*` global-state calls)",
            "an unseeded generator draws OS entropy and silently breaks "
            "same-seed reproducibility of a whole sweep.",
        ),
        Rule(
            "D103",
            "wall-clock call (`time.time`, `datetime.now`, ...) in "
            "simulation code",
            "simulated time is microseconds of modeled work; wall clocks "
            "leak host state into results.",
        ),
        Rule(
            "D104",
            "iteration over an unordered `set`/`frozenset`",
            "set iteration order is hash-salted per process; wrap the "
            "iterable in sorted() to fix the order.",
        ),
        Rule(
            "L201",
            "import violates the package dependency DAG",
            "the layering common -> obs -> devices -> raid -> bitmap -> "
            "core -> sim -> fs -> workloads -> traffic -> faults -> "
            "bench -> analysis is acyclic by construction; upward "
            "imports create cycles.",
        ),
        Rule(
            "U301",
            "additive arithmetic or comparison mixes unit suffixes",
            "adding `_bytes` to `_blocks` (etc.) without a "
            "repro.common.units conversion silently corrupts accounting.",
        ),
        Rule(
            "B501",
            "np.unpackbits on an unbounded or whole-bitmap buffer "
            "outside bitmap.py",
            "unpacking expands the buffer 8x; whole-bitmap expansions "
            "outside the Bitmap class bypass its candidate-byte scan "
            "(bytes != 0xFF) and turn O(free) searches back into "
            "O(nblocks) — route bit expansion through repro.bitmap "
            "helpers or slice an explicit [lo:hi] window first.",
        ),
        Rule(
            "B502",
            "Python for loop indexes a NumPy array element-by-element "
            "in a hot-path package",
            "boxing one scalar per iteration through the interpreter is "
            "what the vectorized CP pipeline exists to avoid; in the "
            "fs/bitmap/traffic/sim hot paths, rewrite the loop as a "
            "whole-array expression (np.maximum, np.add.accumulate, "
            "boolean masks) or waive a deliberately scalar reference "
            "path with a pragma naming this rule.",
        ),
        Rule(
            "E401",
            "bare `except:`",
            "catches SystemExit/KeyboardInterrupt and hides programming "
            "errors; name the exception.",
        ),
        Rule(
            "E402",
            "over-broad `except Exception`/`except BaseException`",
            "swallows unrelated failures; catch the narrowest repro error "
            "class that the handler can actually recover from.",
        ),
        Rule(
            "E403",
            "caught-and-dropped repro error (handler body is only "
            "pass/...)",
            "a swallowed SimError/MediaError/CacheError turns detectable "
            "corruption into silent corruption.",
        ),
        Rule(
            "E404",
            "direct print() in library code",
            "ad-hoc print instrumentation bypasses the structured tracer "
            "(repro.obs) and corrupts machine-readable CLI output; emit "
            "spans/counters via repro.obs, or format output in cli.py.",
        ),
        Rule(
            "P901",
            "pragma waives an unknown rule id",
            "a waiver naming a rule id outside the catalogue (a typo "
            "like D99 for D104) waives nothing and hides the violation "
            "it meant to document; name a rule from the catalogue.",
        ),
        Rule(
            "T701",
            "raw tier-name string literal outside repro.tiering",
            "tier routing is typed: code talks about tiers through "
            "repro.tiering.Tier members (or TierSpec labels), never "
            "through bare 'fast'/'capacity'/'archive' literals — the "
            "string-keyed duck hooks they fed silently no-opped on "
            "stores that did not recognize the name.",
        ),
        Rule(
            "C601",
            "committed-image attribute mutated outside the crash-"
            "consistency commit path",
            "the committed metadata image is what a crash recovers to; "
            "it may change only through PersistenceModel.commit() "
            "(repro.crash.persistence) — any other assignment silently "
            "moves the recovery target and voids the crash-consistency "
            "guarantee.",
        ),
    )
}

#: The interprocedural (``repro lint --deep``) rule catalogue.  These
#: fire from whole-program analysis in :mod:`repro.analysis.flow` and
#: are baselined by fingerprint, not waived by pragma.
FLOW_RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "F801",
            "nondeterministic source reachable from a simulation hot path",
            "wall clocks, stdlib random, unseeded generators, ambient "
            "entropy, and unordered-set iteration anywhere in the call "
            "cone of the CP/allocator/traffic/crash hot paths break "
            "bit-for-bit reproducibility, no matter how many calls deep.",
        ),
        Rule(
            "F802",
            "unit value crosses a function boundary into a different unit",
            "a *_blocks value passed into a size_bytes parameter (or "
            "returned from a *_us function) corrupts accounting invisibly "
            "to the per-line U301 check.",
        ),
        Rule(
            "F803",
            "committed-image write on a path not rooted at the commit path",
            "helpers that mutate the committed image on behalf of "
            "unsanctioned callers move the crash-recovery target; the "
            "call-graph check closes the 'mutate via helper' hole in C601.",
        ),
        Rule(
            "F804",
            "held seed/rng not threaded into a randomness-consuming callee",
            "letting a callee's seed parameter fall back to its default "
            "silently re-seeds that subsystem and forks the random stream "
            "same-seed reproducibility depends on.",
        ),
    )
}

#: The enforced dependency DAG: a package may import only packages with
#: a strictly *smaller* rank.  Top-level modules (``cli``, ``__main__``,
#: the root ``__init__``) sit above every package and are unconstrained.
LAYER_RANK: dict[str, int] = {
    "common": 0,
    #: The tracer sits just above common so every simulation layer may
    #: emit spans/counters into it; it depends only on common.config.
    "obs": 1,
    "devices": 2,
    "raid": 3,
    "bitmap": 4,
    "core": 5,
    "sim": 6,
    "fs": 7,
    "workloads": 8,
    #: The traffic engine consumes the whole substrate (fs CPs, sim
    #: stats, workload mixes) and is itself consumed only by the
    #: drivers above it (faults' chaos-under-load, bench, cli).
    "traffic": 9,
    "faults": 10,
    "bench": 11,
    "analysis": 12,
    #: Heterogeneous multi-tier aggregates: composes fs stores and uses
    #: the auditor/Iron for its bench demo; fs and bench reach it by
    #: name via importlib only (tier policies attach from above).
    "tiering": 13,
    #: The crash-consistency subsystem drives the whole stack (mount,
    #: traffic, the invariant auditor) and is consumed only by cli.
    "crash": 14,
    #: The fleet layer: many aggregate-scale sims as shards, scheduled
    #: and migrated from above.  It may import everything below it;
    #: nothing below (traffic, fs, bench, ...) may import it — the
    #: bench runner dispatches to it by name via importlib only.
    "cluster": 15,
}

#: Tier-role names T701 refuses as raw routing literals outside
#: ``repro.tiering`` (the :class:`repro.tiering.Tier` member values).
TIER_ROLE_LITERALS: tuple[str, ...] = ("fast", "capacity", "archive")

#: Identifier suffixes treated as units by U301.  Multiplicative
#: operators are exempt (they *are* the conversions).
UNIT_SUFFIXES: tuple[str, ...] = (
    "_bytes",
    "_blocks",
    "_gib",
    "_mib",
    "_kib",
    "_us",
    "_ms",
    "_ns",
)

#: Callables whose result does not depend on iteration order; passing a
#: set straight into these is not a D104 violation.
ORDER_SAFE_CONSUMERS: frozenset[str] = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

#: Library exception names whose silent swallowing E403 flags.
REPRO_ERROR_NAMES: frozenset[str] = frozenset(
    {
        "ReproError",
        "SimError",  # historical alias used in issue trackers/docs
        "BitmapError",
        "AllocationError",
        "OutOfSpaceError",
        "GeometryError",
        "CacheError",
        "SerializationError",
        "MountError",
        "FaultError",
        "TransientIOError",
        "MediaError",
        "DegradedError",
        "AuditError",
        "CrashError",
        "TornWriteError",
        "RecoveryExhaustedError",
        "PlacementError",
    }
)

#: Packages whose per-CP work is wall-clock critical; B502 flags
#: element-at-a-time NumPy indexing loops only here.  Driver/reporting
#: layers (bench, analysis, cli) may loop scalar-style freely.
HOT_PATH_PACKAGES: frozenset[str] = frozenset({"fs", "bitmap", "traffic", "sim"})

#: Attribute names C601 treats as the committed image.  Only the
#: sanctioned commit path (repro/crash/persistence.py) may assign them.
COMMITTED_IMAGE_ATTRS: frozenset[str] = frozenset(
    {"committed", "committed_image", "committed_images"}
)

#: Dotted calls D103 flags (``perf_counter`` is allowed: it only times
#: wall-clock reporting of benchmark runs, never simulated state).
WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)
