"""pytest plugin: ``--audit`` arms the CP-time invariant auditor.

Registered from the repository's root ``conftest.py`` via
``pytest_plugins``.  With ``--audit``, every :class:`~repro.fs.cp.
CPEngine` built during the test session gets an
:class:`~repro.analysis.auditor.InvariantAuditor`, so *every*
consistency point run by *any* test is cross-checked; a violation
surfaces as an :class:`~repro.common.errors.AuditError` raised from
``run_cp`` inside the offending test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--audit",
        action="store_true",
        default=False,
        help="arm the repro invariant auditor for every CP engine "
        "constructed during the session",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--audit"):
        from .auditor import arm_global

        arm_global()


def pytest_unconfigure(config: pytest.Config) -> None:
    if config.getoption("--audit"):
        from .auditor import disarm_global

        disarm_global()
