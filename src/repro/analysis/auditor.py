"""Whole-system runtime invariant auditor.

Generalizes the per-structure ``check_invariants`` hooks (HBPS, AA
caches, delayed-free log) into one cross-layer audit: after every
consistency point the bitmap popcounts, the aggregate free counters,
the AA summary (score-keeper) totals, and the HBPS bin totals must all
describe the same free space, and the CP's :class:`~repro.sim.stats.
CPStats` record must conserve blocks (allocations, frees, and metafile
dirtying each balance against the per-instance counter deltas).

Two entry points:

* :func:`audit_sim` — structural audit of a simulator (or CP engine)
  *right now*; returns a structured :class:`AuditReport`.
* :class:`InvariantAuditor` — CP-time auditor the engine invokes around
  every :meth:`~repro.fs.cp.CPEngine.run_cp` when armed (``repro
  audit``, ``pytest --audit``); adds the conservation checks that need
  before/after counter snapshots.

Arming is global and layering-safe: :func:`arm_global` installs a
factory on :class:`~repro.fs.cp.CPEngine` (a plain class attribute, so
``fs`` never imports ``analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..common.errors import AuditError, CacheError, ReproError
from ..core.hbps_cache import RAIDAgnosticAACache
from ..core.heap_cache import RAIDAwareAACache
from ..core.policies import BitmapWalkSource
from ..faults.recovery import instances
from ..fs.cp import CPEngine
from ..sim.stats import CPStats

__all__ = [
    "Violation",
    "AuditReport",
    "audit_sim",
    "InvariantAuditor",
    "arm_global",
    "disarm_global",
]


@dataclass(frozen=True)
class Violation:
    """One failed invariant: where it was found, which check, and how."""

    where: str
    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.where}] {self.check}: {self.message}"


@dataclass
class AuditReport:
    """Structured outcome of one audit pass."""

    violations: list[Violation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, where: str, check: str, message: str) -> None:
        self.violations.append(Violation(where, check, message))

    def raise_if_failed(self) -> None:
        """Raise :class:`AuditError` carrying every violation."""
        if self.violations:
            lines = "\n".join(f"  {v}" for v in self.violations)
            raise AuditError(
                f"invariant audit failed with {len(self.violations)} "
                f"violation(s) after {self.checks_run} checks:\n{lines}"
            )

    def format(self) -> str:
        if self.ok:
            return f"audit: clean ({self.checks_run} checks)"
        lines = [str(v) for v in self.violations]
        lines.append(
            f"audit: {len(self.violations)} violation(s) in "
            f"{self.checks_run} checks"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Structural (point-in-time) audit
# ----------------------------------------------------------------------
def _hbps_bins_of(scores: np.ndarray, hbps: Any) -> np.ndarray:
    """Vectorized :meth:`HBPS.bin_of` over a score array."""
    scores = np.asarray(scores, dtype=np.int64)
    bins = (hbps.max_score - scores) // hbps.bin_width
    return np.where(scores == 0, hbps.nbins - 1, bins)


def _audit_bitmap(where: str, fs: Any, report: AuditReport) -> None:
    """Bitmap popcount vs the cached allocated/free counters."""
    bitmap = fs.metafile.bitmap
    report.checks_run += 1
    pop = bitmap.popcount()
    if pop != bitmap.allocated_count:
        report.add(
            where, "bitmap-popcount",
            f"popcount {pop} != cached allocated_count {bitmap.allocated_count}",
        )
    report.checks_run += 1
    if bitmap.allocated_count + bitmap.free_count != bitmap.nblocks:
        report.add(
            where, "bitmap-totals",
            f"allocated {bitmap.allocated_count} + free {bitmap.free_count} "
            f"!= nblocks {bitmap.nblocks}",
        )


def _audit_keeper(where: str, fs: Any, report: AuditReport) -> None:
    """Score-keeper totals vs the bitmap (the AA summary)."""
    keeper = fs.keeper
    bitmap = fs.metafile.bitmap
    if keeper.pending_aa_count:
        # Mid-CP state: applied scores intentionally lag the bitmap.
        return
    report.checks_run += 1
    try:
        keeper.verify_against(bitmap)
    except CacheError as exc:
        report.add(where, "keeper-vs-bitmap", str(exc))
        return
    report.checks_run += 1
    total = int(keeper.scores.sum())
    if total != bitmap.free_count:
        report.add(
            where, "keeper-total",
            f"sum of AA scores {total} != bitmap free_count {bitmap.free_count}",
        )


def _audit_delayed_frees(where: str, fs: Any, report: AuditReport) -> None:
    """Delayed-free log internal conservation plus bitmap agreement."""
    report.checks_run += 1
    try:
        fs.delayed_frees.check_invariants(bitmap=fs.metafile.bitmap)
    except CacheError as exc:
        report.add(where, "delayed-frees", str(exc))


def _audit_cache(where: str, fs: Any, report: AuditReport) -> None:
    """AA cache structure, totals, and agreement with the keeper."""
    cache = fs.cache
    if cache is None:
        # Legitimate for the baseline policies (random / linear scan)
        # and while degraded — but degraded allocation must actually be
        # running on the bitmap-walk fallback.
        report.checks_run += 1
        if fs.degraded_alloc and not isinstance(fs.source, BitmapWalkSource):
            report.add(
                where, "cache-presence",
                f"degraded allocation without a bitmap-walk source "
                f"({type(fs.source).__name__})",
            )
        return
    report.checks_run += 1
    if fs.degraded_alloc:
        report.add(
            where, "cache-presence",
            "instance is in degraded allocation but still holds an AA cache",
        )
        return
    report.checks_run += 1
    try:
        cache.check_invariants()
    except CacheError as exc:
        report.add(where, "cache-structure", str(exc))
        return
    keeper_clean = fs.keeper.pending_aa_count == 0
    if isinstance(cache, RAIDAgnosticAACache):
        if cache.seeded:
            return  # histogram counts are intentionally stale until rebuild
        hbps = cache.hbps
        report.checks_run += 1
        tracked = hbps.total_count + len(cache.checked_out)
        if tracked != cache.num_aas:
            report.add(
                where, "hbps-total",
                f"HBPS tracks {hbps.total_count} + {len(cache.checked_out)} "
                f"checked out != num_aas {cache.num_aas}",
            )
        if keeper_clean:
            report.checks_run += 1
            scores = np.asarray(fs.keeper.scores, dtype=np.int64)
            out = np.fromiter(cache.checked_out, dtype=np.int64, count=len(cache.checked_out))
            in_cache = np.ones(cache.num_aas, dtype=bool)
            if out.size:
                in_cache[out] = False
            expected = np.bincount(
                _hbps_bins_of(scores[in_cache], hbps), minlength=hbps.nbins
            )
            actual = np.asarray(hbps.counts, dtype=np.int64)
            if not np.array_equal(expected, actual):
                bad = np.flatnonzero(expected != actual)
                report.add(
                    where, "hbps-bins-vs-scores",
                    f"HBPS bin counts diverge from AA scores in bins "
                    f"{bad[:8].tolist()}: hbps={actual[bad[:8]].tolist()} "
                    f"scores={expected[bad[:8]].tolist()}",
                )
    elif isinstance(cache, RAIDAwareAACache) and keeper_clean and not cache.seeded:
        report.checks_run += 1
        cached = cache.scores_view
        known = cached >= 0
        scores = np.asarray(fs.keeper.scores, dtype=np.int64)
        if not np.array_equal(cached[known], scores[known]):
            bad = np.flatnonzero(known & (cached != scores))
            report.add(
                where, "heap-vs-scores",
                f"heap cache scores diverge from keeper in AAs "
                f"{bad[:8].tolist()}: cache={cached[bad[:8]].tolist()} "
                f"keeper={scores[bad[:8]].tolist()}",
            )


def _audit_flexvol_maps(where: str, fs: Any, report: AuditReport) -> None:
    """FlexVol map/bitmap agreement: every allocated virtual VBN is
    either actively mapped, snapshot-pinned, or pending a delayed free;
    the three populations are disjoint and exhaustive."""
    l2v = getattr(fs, "l2v", None)
    if l2v is None:
        return
    report.checks_run += 1
    try:
        fs.verify_consistency()
    except ReproError as exc:
        report.add(where, "flexvol-maps", str(exc))
        return
    report.checks_run += 1
    referenced = np.zeros(fs.nblocks, dtype=bool)
    live = l2v[l2v >= 0]
    referenced[live] = True
    referenced |= fs._snap_mask
    expected = int(referenced.sum()) + fs.delayed_frees.pending_count
    allocated = fs.metafile.bitmap.allocated_count
    if expected != allocated:
        report.add(
            where, "flexvol-accounting",
            f"mapped+pinned {int(referenced.sum())} + pending frees "
            f"{fs.delayed_frees.pending_count} != allocated {allocated}",
        )


def audit_sim(sim: Any) -> AuditReport:
    """Structural audit of every file-system instance in ``sim`` (a
    :class:`~repro.fs.filesystem.WaflSim`, a :class:`~repro.fs.cp.
    CPEngine`, or anything else with ``store``/``vols`` attributes)."""
    report = AuditReport()
    for where, fs in sorted(instances(sim).items()):
        _audit_bitmap(where, fs, report)
        _audit_keeper(where, fs, report)
        _audit_delayed_frees(where, fs, report)
        _audit_cache(where, fs, report)
        _audit_flexvol_maps(where, fs, report)
    return report


# ----------------------------------------------------------------------
# CP-time auditor (conservation across one consistency point)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Snapshot:
    """Per-instance counter snapshot taken just before a CP runs."""

    allocated: int
    total_logged: int
    pending: int
    dirtied_total: int


def _snapshot(fs: Any) -> _Snapshot:
    return _Snapshot(
        allocated=fs.metafile.bitmap.allocated_count,
        total_logged=fs.delayed_frees.total_logged,
        pending=fs.delayed_frees.pending_count,
        dirtied_total=fs.metafile.blocks_dirtied_total,
    )


class InvariantAuditor:
    """Audits every consistency point an engine runs.

    ``before_cp`` snapshots each instance's monotonic counters;
    ``after_cp`` re-audits the whole system structurally and checks the
    CP's block-conservation identities against the snapshots:

    * frees applied (per instance) = Δ total_logged − Δ pending, and
      their sum must equal ``stats.blocks_freed``;
    * allocations (Δ allocated + frees applied) summed over physical
      stores must equal ``stats.physical_blocks``, and over volumes
      ``stats.virtual_blocks``;
    * Δ ``blocks_dirtied_total`` summed must equal
      ``stats.metafile_blocks_dirtied``.

    Parameters
    ----------
    raise_on_violation:
        When True (default) a failed audit raises :class:`AuditError`
        from inside ``run_cp``; when False, reports accumulate in
        :attr:`reports` for later inspection.
    """

    def __init__(self, *, raise_on_violation: bool = True) -> None:
        self.raise_on_violation = raise_on_violation
        self._before: dict[str, _Snapshot] = {}
        #: Reports from every audited CP (newest last).
        self.reports: list[AuditReport] = []
        #: CPs audited (metric; also read by the pytest plugin summary).
        self.cps_audited = 0

    # -- engine hooks --------------------------------------------------
    def before_cp(self, engine) -> None:
        self._before = {w: _snapshot(fs) for w, fs in instances(engine).items()}

    def after_cp(self, engine, stats: CPStats) -> AuditReport:
        report = audit_sim(engine)
        self._check_conservation(engine, stats, report)
        report.checks_run += 1
        for message in stats.accounting_violations():
            report.add("stats", "stats-sanity", message)
        if obs.active():
            # Traced block counts must equal the counted ones: the
            # tracer's per-CP counter totals re-sum the same boundary
            # reports CPStats aggregates, so any drift between an
            # instrumentation site and the accounting fails the audit.
            report.checks_run += 1
            for message in obs.report.reconcile_current_cp(
                obs.get_tracer(), stats
            ):
                report.add("trace", "trace-vs-stats", message)
        self.reports.append(report)
        self.cps_audited += 1
        if self.raise_on_violation:
            report.raise_if_failed()
        return report

    # -- conservation identities ---------------------------------------
    def _check_conservation(self, engine, stats: CPStats, report: AuditReport) -> None:
        freed_sum = 0
        store_allocs = 0
        vol_allocs = 0
        dirtied_sum = 0
        for where, fs in instances(engine).items():
            before = self._before.get(where)
            if before is None:
                continue  # instance appeared mid-CP (not a known path)
            after = _snapshot(fs)
            freed = (after.total_logged - before.total_logged) - (
                after.pending - before.pending
            )
            report.checks_run += 1
            if freed < 0:
                report.add(
                    where, "frees-conservation",
                    f"negative frees applied ({freed}): logged delta "
                    f"{after.total_logged - before.total_logged}, pending delta "
                    f"{after.pending - before.pending}",
                )
            allocs = (after.allocated - before.allocated) + freed
            report.checks_run += 1
            if allocs < 0:
                report.add(
                    where, "alloc-conservation",
                    f"negative allocations ({allocs}) inferred over this CP",
                )
            freed_sum += freed
            dirtied_sum += after.dirtied_total - before.dirtied_total
            if where.startswith("vol:"):
                vol_allocs += allocs
            else:
                store_allocs += allocs
        report.checks_run += 3
        if freed_sum != stats.blocks_freed:
            report.add(
                "cp", "frees-vs-stats",
                f"instances applied {freed_sum} frees but CPStats.blocks_freed "
                f"= {stats.blocks_freed}",
            )
        if store_allocs != stats.physical_blocks:
            report.add(
                "cp", "physical-vs-stats",
                f"stores allocated {store_allocs} blocks but "
                f"CPStats.physical_blocks = {stats.physical_blocks}",
            )
        if vol_allocs != stats.virtual_blocks:
            report.add(
                "cp", "virtual-vs-stats",
                f"volumes allocated {vol_allocs} blocks but "
                f"CPStats.virtual_blocks = {stats.virtual_blocks}",
            )
        report.checks_run += 1
        if dirtied_sum != stats.metafile_blocks_dirtied:
            report.add(
                "cp", "dirtied-vs-stats",
                f"metafiles dirtied {dirtied_sum} blocks but "
                f"CPStats.metafile_blocks_dirtied = {stats.metafile_blocks_dirtied}",
            )


# ----------------------------------------------------------------------
# Global arming (CLI ``repro audit`` and pytest ``--audit``)
# ----------------------------------------------------------------------
def arm_global(*, raise_on_violation: bool = True) -> None:
    """Arm auditing for every :class:`CPEngine` constructed from now on."""
    CPEngine.default_auditor_factory = staticmethod(
        lambda: InvariantAuditor(raise_on_violation=raise_on_violation)
    )


def disarm_global() -> None:
    """Stop arming newly constructed engines."""
    CPEngine.default_auditor_factory = None
