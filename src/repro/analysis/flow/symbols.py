"""Per-module symbol extraction for the whole-program flow analyzer.

One :class:`ModuleInfo` per source file captures everything the
interprocedural passes need — functions with their parameter/unit/seed
shapes, classes with their base lists, canonicalized import aliases,
and every call site annotated with the argument facts the passes
consume (unit suffixes, seed-ish expressions, partial/pool-worker
indirections).  Extraction is the only AST walk in the pipeline; it is
cheap, per-file, and cacheable by content hash
(:mod:`repro.analysis.flow.callgraph` owns the cache).

The extraction is deliberately syntactic: no imports are executed and
no types are inferred beyond (a) local ``var = ClassName(...)``
bindings and (b) the canonical dotted origin of imported names.  The
linker in :mod:`repro.analysis.flow.callgraph` turns these raw facts
into a resolved call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..rules import UNIT_SUFFIXES, WALL_CLOCK_CALLS

__all__ = [
    "ArgFact",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "SourceFact",
    "extract_module",
    "module_name_for",
    "unit_suffix_of",
]

#: Wall-clock entry points the *flow* analysis treats as nondeterminism
#: sources.  Strictly larger than simlint's D103 set: ``perf_counter``
#: is fine for timing benchmark reporting (D103 allows it) but must
#: never be reachable from a simulation hot path.
FLOW_CLOCK_CALLS: frozenset[str] = WALL_CLOCK_CALLS | frozenset(
    {"time.perf_counter", "time.perf_counter_ns", "time.process_time"}
)

#: Ambient-entropy calls beyond the clock family.
ENTROPY_CALLS: frozenset[str] = frozenset(
    {"os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.token_bytes",
     "secrets.token_hex", "secrets.randbelow"}
)

#: Parameter / local names that carry a seed or generator.
_SEEDISH_EXACT = frozenset({"seed", "rng", "generator", "seed_seq"})
_SEEDISH_SUFFIXES = ("_seed", "_rng")

#: Callables that *produce* a generator; a local assigned from one of
#: these gives the enclosing function a seed in scope.
_RNG_FACTORY_TAILS = frozenset({"make_rng", "default_rng", "spawn"})

#: Pool/executor submission method names: the first callable argument
#: runs later (possibly in another process) — an indirect call edge.
_SUBMIT_TAILS = frozenset({"submit", "map", "imap", "imap_unordered",
                           "starmap", "apply_async", "apply"})

#: Thread/process constructors taking ``target=``.
_TARGET_CTORS = frozenset({"Process", "Thread", "Timer"})


def unit_suffix_of(name: str | None) -> str | None:
    """The unit suffix (``_bytes``, ``_blocks``, ...) carried by a
    name, or None."""
    if not name:
        return None
    for suffix in UNIT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return suffix
    return None


def seedish_name(name: str | None) -> bool:
    """True when ``name`` conventionally carries a seed or generator."""
    if not name:
        return False
    return name in _SEEDISH_EXACT or name.endswith(_SEEDISH_SUFFIXES)


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from package ``__init__.py`` chain.

    ``src/repro/fs/cp.py`` -> ``repro.fs.cp``; works equally for test
    fixture trees rooted anywhere.
    """
    p = path.resolve()
    names = [] if p.stem == "__init__" else [p.stem]
    d = p.parent
    while (d / "__init__.py").exists():
        names.append(d.name)
        parent = d.parent
        if parent == d:
            break
        d = parent
    return ".".join(reversed(names)) or p.stem


@dataclass(frozen=True)
class ArgFact:
    """What the passes need to know about one call argument."""

    #: Keyword name, or None for a positional argument.
    keyword: str | None
    #: Unit suffix carried by the argument expression, if any.
    unit: str | None
    #: Canonical dotted callee when the argument is itself a direct
    #: call (``f(g(...))``) — lets F802 use g's inferred return unit.
    call_dotted: str | None
    #: True when the expression mentions a seed/rng-ish name or an RNG
    #: factory — it satisfies a seed parameter.
    seedish: bool

    def to_dict(self) -> dict[str, Any]:
        return {"k": self.keyword, "u": self.unit, "c": self.call_dotted,
                "s": self.seedish}

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "ArgFact":
        return ArgFact(d["k"], d["u"], d["c"], d["s"])


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    #: Canonical dotted callee: imports are resolved to their origin
    #: (``make_rng`` -> ``repro.common.rng.make_rng``); method calls
    #: keep their receiver head (``self.run_cp``, ``st.take_riders``).
    dotted: str
    lineno: int
    col: int
    #: "direct" for ordinary calls; "partial" / "submit" / "target"
    #: for functools.partial, pool submissions, and Process(target=...)
    #: indirections (edges only — argument facts are not mapped).
    kind: str
    args: tuple[ArgFact, ...]
    #: True when *args/**kwargs make the argument mapping unknowable.
    has_star: bool

    def to_dict(self) -> dict[str, Any]:
        return {"d": self.dotted, "l": self.lineno, "c": self.col,
                "k": self.kind, "a": [a.to_dict() for a in self.args],
                "st": self.has_star}

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "CallSite":
        return CallSite(d["d"], d["l"], d["c"], d["k"],
                        tuple(ArgFact.from_dict(a) for a in d["a"]), d["st"])


@dataclass(frozen=True)
class SourceFact:
    """A direct nondeterminism source inside a function body."""

    #: "wall-clock" | "stdlib-random" | "unseeded-rng" | "entropy"
    #: | "set-iteration"
    kind: str
    detail: str
    lineno: int

    def to_dict(self) -> dict[str, Any]:
        return {"k": self.kind, "d": self.detail, "l": self.lineno}

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "SourceFact":
        return SourceFact(d["k"], d["d"], d["l"])


@dataclass
class FunctionInfo:
    """One function or method definition."""

    fqn: str
    module: str
    qualname: str
    name: str
    cls: str | None
    path: str
    lineno: int
    #: Parameter names in positional order, including ``self``.
    params: tuple[str, ...] = ()
    #: Number of trailing positional parameters that carry defaults.
    n_defaults: int = 0
    #: Keyword-only parameter names.
    kwonly: tuple[str, ...] = ()
    #: Keyword-only parameters that carry defaults.
    kwonly_defaults: tuple[str, ...] = ()
    #: Parameters (positional or kw-only) that carry a seed/generator.
    seed_params: tuple[str, ...] = ()
    #: True when the body binds a local from an RNG factory.
    has_local_rng: bool = False
    #: Direct nondeterminism sources in the body.
    sources: tuple[SourceFact, ...] = ()
    #: Committed-image attribute writes: (attribute, lineno).
    committed_writes: tuple[tuple[str, int], ...] = ()
    #: Unit suffixes of expressions this function returns.
    return_units: tuple[str, ...] = ()
    #: Canonical dotted callees whose result is returned directly.
    return_calls: tuple[str, ...] = ()
    #: Every call site in the body.
    calls: tuple[CallSite, ...] = ()
    #: Unit-suffixed locals assigned from a call:
    #: (target suffix, canonical dotted callee, lineno).
    unit_assigns: tuple[tuple[str, str, int], ...] = ()
    #: Local variable -> dotted class name for ``var = ClassName(...)``.
    local_types: dict[str, str] = field(default_factory=dict)

    @property
    def seed_defaults(self) -> tuple[str, ...]:
        """Seed parameters that carry a default (omittable at the call
        site — the silent-reseed hazard F804 guards)."""
        defaulted = set(self.kwonly_defaults)
        if self.n_defaults:
            defaulted.update(self.params[-self.n_defaults:])
        return tuple(p for p in self.seed_params if p in defaulted)

    def to_dict(self) -> dict[str, Any]:
        return {
            "fqn": self.fqn, "module": self.module, "qualname": self.qualname,
            "name": self.name, "cls": self.cls, "path": self.path,
            "lineno": self.lineno, "params": list(self.params),
            "n_defaults": self.n_defaults, "kwonly": list(self.kwonly),
            "kwonly_defaults": list(self.kwonly_defaults),
            "seed_params": list(self.seed_params),
            "has_local_rng": self.has_local_rng,
            "sources": [s.to_dict() for s in self.sources],
            "committed_writes": [list(w) for w in self.committed_writes],
            "return_units": list(self.return_units),
            "return_calls": list(self.return_calls),
            "calls": [c.to_dict() for c in self.calls],
            "unit_assigns": [list(a) for a in self.unit_assigns],
            "local_types": dict(self.local_types),
        }

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "FunctionInfo":
        return FunctionInfo(
            fqn=d["fqn"], module=d["module"], qualname=d["qualname"],
            name=d["name"], cls=d["cls"], path=d["path"], lineno=d["lineno"],
            params=tuple(d["params"]), n_defaults=d["n_defaults"],
            kwonly=tuple(d["kwonly"]),
            kwonly_defaults=tuple(d["kwonly_defaults"]),
            seed_params=tuple(d["seed_params"]),
            has_local_rng=d["has_local_rng"],
            sources=tuple(SourceFact.from_dict(s) for s in d["sources"]),
            committed_writes=tuple(
                (w[0], w[1]) for w in d["committed_writes"]),
            return_units=tuple(d["return_units"]),
            return_calls=tuple(d["return_calls"]),
            calls=tuple(CallSite.from_dict(c) for c in d["calls"]),
            unit_assigns=tuple((a[0], a[1], a[2]) for a in d["unit_assigns"]),
            local_types=dict(d["local_types"]),
        )


@dataclass
class ClassInfo:
    """One class definition with its (canonical dotted) base names."""

    fqn: str
    module: str
    name: str
    lineno: int
    bases: tuple[str, ...] = ()
    #: method name -> function fqn
    methods: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"fqn": self.fqn, "module": self.module, "name": self.name,
                "lineno": self.lineno, "bases": list(self.bases),
                "methods": dict(self.methods)}

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "ClassInfo":
        return ClassInfo(fqn=d["fqn"], module=d["module"], name=d["name"],
                         lineno=d["lineno"], bases=tuple(d["bases"]),
                         methods=dict(d["methods"]))


@dataclass
class ModuleInfo:
    """Everything extracted from one source file."""

    module: str
    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> canonical dotted origin
    imports: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "functions": {k: f.to_dict()
                          for k, f in sorted(self.functions.items())},
            "classes": {k: c.to_dict()
                        for k, c in sorted(self.classes.items())},
            "imports": dict(sorted(self.imports.items())),
        }

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "ModuleInfo":
        return ModuleInfo(
            module=d["module"], path=d["path"],
            functions={k: FunctionInfo.from_dict(f)
                       for k, f in d["functions"].items()},
            classes={k: ClassInfo.from_dict(c)
                     for k, c in d["classes"].items()},
            imports=dict(d["imports"]),
        )


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTable:
    """Alias -> canonical dotted origin, with relative-import handling."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.aliases: dict[str, str] = {}

    def _package_parts(self, level: int) -> list[str]:
        parts = self.module.split(".")
        # level 1 = the containing package; for a package __init__ the
        # module itself is that package.
        drop = level - 1 if self.is_package else level
        return parts[: len(parts) - drop] if drop else parts

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.aliases[head] = head

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level == 0:
            base = node.module or ""
        else:
            parts = self._package_parts(node.level)
            base = ".".join(parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        for alias in node.names:
            if alias.name == "*":
                continue
            origin = f"{base}.{alias.name}" if base else alias.name
            self.aliases[alias.asname or alias.name] = origin

    def canonical(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


class _FunctionExtractor:
    """Collects the per-function facts from one function body."""

    def __init__(self, info: FunctionInfo, imports: _ImportTable,
                 committed_attrs: frozenset[str]) -> None:
        self.info = info
        self.imports = imports
        self.committed_attrs = committed_attrs
        self.sources: list[SourceFact] = []
        self.calls: list[CallSite] = []
        self.writes: list[tuple[str, int]] = []
        self.return_units: list[str] = []
        self.return_calls: list[str] = []
        self.unit_assigns: list[tuple[str, str, int]] = []
        self.local_types: dict[str, str] = {}
        self.has_local_rng = False

    # -- expression facts ----------------------------------------------
    def _expr_unit(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return unit_suffix_of(node.id)
        if isinstance(node, ast.Attribute):
            return unit_suffix_of(node.attr)
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                tail = dotted.split(".")[-1]
                if "_to_" in tail:
                    word = tail.rsplit("_to_", 1)[1]
                    return unit_suffix_of(f"_{word}")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            left = self._expr_unit(node.left)
            right = self._expr_unit(node.right)
            if left is not None and left == right:
                return left
        if isinstance(node, ast.UnaryOp):
            return self._expr_unit(node.operand)
        return None

    def _expr_seedish(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and seedish_name(sub.id):
                return True
            if isinstance(sub, ast.Attribute) and seedish_name(sub.attr):
                return True
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted is not None and (
                        dotted.split(".")[-1] in _RNG_FACTORY_TAILS):
                    return True
        return False

    def _arg_fact(self, node: ast.AST, keyword: str | None) -> ArgFact:
        call_dotted: str | None = None
        if isinstance(node, ast.Call):
            raw = _dotted(node.func)
            if raw is not None:
                call_dotted = self.imports.canonical(raw)
        return ArgFact(keyword=keyword, unit=self._expr_unit(node),
                       call_dotted=call_dotted,
                       seedish=self._expr_seedish(node))

    # -- body walk -----------------------------------------------------
    def walk(self, body: list[ast.stmt]) -> None:
        """Breadth-first walk of the body, pruned at nested function and
        class definitions (those get their own :class:`FunctionInfo`)."""
        work: list[ast.AST] = list(body)
        i = 0
        while i < len(work):
            node = work[i]
            i += 1
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            self._node(node)
            work.extend(ast.iter_child_nodes(node))

    def _node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._call(node)
        elif isinstance(node, ast.Return) and node.value is not None:
            unit = self._expr_unit(node.value)
            if unit is not None:
                self.return_units.append(unit)
            if isinstance(node.value, ast.Call):
                raw = _dotted(node.value.func)
                if raw is not None:
                    self.return_calls.append(self.imports.canonical(raw))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._assign(target, node.value, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._assign(node.target, node.value, node.lineno)
        elif isinstance(node, ast.AugAssign):
            self._committed_write(node.target, node.lineno)
        elif isinstance(node, ast.For):
            self._check_set_iteration(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                self._check_set_iteration(comp.iter)

    def _assign(self, target: ast.AST, value: ast.expr, lineno: int) -> None:
        self._committed_write(target, lineno)
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, ast.Call):
            raw = _dotted(value.func)
            if raw is None:
                return
            canonical = self.imports.canonical(raw)
            tail = canonical.split(".")[-1]
            if tail in _RNG_FACTORY_TAILS:
                self.has_local_rng = True
            if tail and tail[0].isupper():
                self.local_types[target.id] = canonical
            suffix = unit_suffix_of(target.id)
            if suffix is not None:
                self.unit_assigns.append((suffix, canonical, lineno))

    def _committed_write(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._committed_write(elt, lineno)
            return
        while isinstance(target, ast.Subscript):
            target = target.value
        attr = target
        while isinstance(attr, ast.Attribute):
            if attr.attr in self.committed_attrs:
                self.writes.append((attr.attr, lineno))
                return
            attr = attr.value

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        is_set = isinstance(iter_node, (ast.Set, ast.SetComp))
        if isinstance(iter_node, ast.Call):
            dotted = _dotted(iter_node.func)
            is_set = dotted in ("set", "frozenset")
        if is_set:
            self.sources.append(SourceFact(
                "set-iteration", "iteration over an unordered set",
                getattr(iter_node, "lineno", self.info.lineno)))

    # -- calls ---------------------------------------------------------
    def _call(self, node: ast.Call) -> None:
        raw = _dotted(node.func)
        if raw is None:
            return
        canonical = self.imports.canonical(raw)
        self._check_source(node, canonical)
        has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords)
        facts = tuple(
            [self._arg_fact(a, None) for a in node.args
             if not isinstance(a, ast.Starred)]
            + [self._arg_fact(kw.value, kw.arg) for kw in node.keywords
               if kw.arg is not None]
        )
        self.calls.append(CallSite(
            dotted=canonical, lineno=node.lineno, col=node.col_offset,
            kind="direct", args=facts, has_star=has_star))
        self._indirect_edges(node, canonical)

    def _check_source(self, node: ast.Call, canonical: str) -> None:
        if canonical.split(".")[0] == "random":
            self.sources.append(SourceFact(
                "stdlib-random", f"{canonical}()", node.lineno))
            return
        if canonical in FLOW_CLOCK_CALLS:
            self.sources.append(SourceFact(
                "wall-clock", f"{canonical}()", node.lineno))
            return
        if canonical in ENTROPY_CALLS:
            self.sources.append(SourceFact(
                "entropy", f"{canonical}()", node.lineno))
            return
        if canonical in ("numpy.random.default_rng", "np.random.default_rng"):
            unseeded = not node.args and not node.keywords
            none_seed = (len(node.args) == 1
                         and isinstance(node.args[0], ast.Constant)
                         and node.args[0].value is None)
            if unseeded or none_seed:
                self.sources.append(SourceFact(
                    "unseeded-rng", "numpy default_rng() with no seed",
                    node.lineno))

    def _indirect_edges(self, node: ast.Call, canonical: str) -> None:
        tail = canonical.split(".")[-1]
        callee: ast.AST | None = None
        kind = ""
        if tail == "partial" and node.args:
            callee, kind = node.args[0], "partial"
        elif tail in _SUBMIT_TAILS and node.args:
            callee, kind = node.args[0], "submit"
        elif tail in _TARGET_CTORS:
            for kw in node.keywords:
                if kw.arg == "target":
                    callee, kind = kw.value, "target"
        if callee is None:
            return
        raw = _dotted(callee)
        if raw is None:
            return
        self.calls.append(CallSite(
            dotted=self.imports.canonical(raw), lineno=node.lineno,
            col=node.col_offset, kind=kind, args=(), has_star=True))


def _param_shape(
    args: ast.arguments,
) -> tuple[tuple[str, ...], int, tuple[str, ...], tuple[str, ...]]:
    params = tuple(a.arg for a in args.posonlyargs + args.args)
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    kwonly_defaults = tuple(
        a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults)
        if d is not None)
    return params, len(args.defaults), kwonly, kwonly_defaults


def extract_module(
    source: str,
    path: str | Path,
    committed_attrs: frozenset[str],
    module: str | None = None,
) -> ModuleInfo:
    """Extract one module's symbols and raw call facts."""
    p = Path(path)
    mod_name = module if module is not None else module_name_for(p)
    tree = ast.parse(source, filename=str(p))
    is_package = p.stem == "__init__"
    imports = _ImportTable(mod_name, is_package)
    info = ModuleInfo(module=mod_name, path=str(p))

    def handle_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                        cls: ClassInfo | None) -> None:
        qualname = f"{cls.name}.{node.name}" if cls else node.name
        fqn = f"{mod_name}.{qualname}"
        params, n_defaults, kwonly, kwonly_defaults = _param_shape(node.args)
        seed_params = tuple(pn for pn in params + kwonly if seedish_name(pn))
        fn = FunctionInfo(
            fqn=fqn, module=mod_name, qualname=qualname, name=node.name,
            cls=cls.name if cls else None, path=str(p), lineno=node.lineno,
            params=params, n_defaults=n_defaults, kwonly=kwonly,
            kwonly_defaults=kwonly_defaults, seed_params=seed_params,
        )
        extractor = _FunctionExtractor(fn, imports, committed_attrs)
        extractor.walk(list(node.body))
        fn.sources = tuple(extractor.sources)
        fn.calls = tuple(extractor.calls)
        fn.committed_writes = tuple(extractor.writes)
        fn.return_units = tuple(extractor.return_units)
        fn.return_calls = tuple(extractor.return_calls)
        fn.unit_assigns = tuple(extractor.unit_assigns)
        fn.local_types = extractor.local_types
        fn.has_local_rng = extractor.has_local_rng
        info.functions[fqn] = fn
        if cls is not None:
            cls.methods[node.name] = fqn
        # Nested function definitions are attributed to the same scope
        # chain (calls to them resolve by simple name within module).
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handle_function(child, cls)

    for node in tree.body:
        if isinstance(node, ast.Import):
            imports.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            imports.add_import_from(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            handle_function(node, None)
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                fqn=f"{mod_name}.{node.name}", module=mod_name,
                name=node.name, lineno=node.lineno,
                bases=tuple(b for b in (
                    imports.canonical(d) for d in (
                        _dotted(base) for base in node.bases) if d is not None
                )),
            )
            info.classes[cls.fqn] = cls
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    handle_function(child, cls)
    info.imports = dict(imports.aliases)
    return info
