"""F801 — interprocedural determinism taint.

A function is a *source* when its body consults ambient entropy (wall
clocks, the stdlib ``random`` module, unseeded numpy generators,
``os.urandom``-style calls) or iterates an unordered set.  The pass
computes the forward call cone of the simulation hot paths
(:attr:`FlowConfig.hot_root_modules`) and reports every source inside
it, with the root -> ... -> source call chain.  Unlike simlint's
per-line D rules this sees violations laundered through any number of
function calls, across modules, through method dispatch, partials and
pool workers.

The purity whitelist (:attr:`FlowConfig.pure_fqns`) replaces per-line
pragmas: a whitelisted function's direct sources are trusted to not
escape into simulated state, with a recorded justification.
"""

from __future__ import annotations

from .base import DeepFinding, FlowConfig, fmt_trace, shift_down_trace
from .callgraph import CallGraph
from .engine import reach_down, trace_to

__all__ = ["run_determinism_taint"]

RULE = "F801"


def run_determinism_taint(
    graph: CallGraph, config: FlowConfig
) -> list[DeepFinding]:
    functions = graph.project.functions
    roots = sorted(f for f, fn in functions.items() if config.is_hot_root(fn))
    parents = reach_down(graph, roots)
    findings: list[DeepFinding] = []
    for fqn in sorted(parents):
        fn = functions[fqn]
        if fn.fqn in config.pure_fqns or not fn.sources:
            continue
        hops = shift_down_trace(trace_to(parents, fqn))
        root = hops[0][0] if hops else fqn
        for src in fn.sources:
            trace = fmt_trace(
                graph, hops[:-1] + [(fqn, src.lineno)] if hops else [])
            findings.append(DeepFinding(
                rule=RULE,
                path=fn.path,
                line=src.lineno,
                function=fqn,
                message=(
                    f"nondeterministic source ({src.kind}: {src.detail}) is "
                    f"reachable from hot path '{root}'"
                ),
                trace=trace,
                key=f"{src.kind}:{src.detail}",
            ))
    return findings
