"""Findings baseline with a ratchet.

The checked-in baseline (``src/repro/analysis/flow/baseline.json``)
records deliberately-waived deep findings by *fingerprint* (rule +
function + stable detail — never line numbers) with a one-line
justification each.  The ratchet:

* a finding **not** in the baseline is *new* -> the run fails;
* a finding in the baseline is *waived* -> reported, never fatal;
* a baseline entry matching no finding is *stale* -> pruned on
  ``--update-baseline`` so waivers cannot outlive their violation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .base import DeepFinding

__all__ = ["BaselineDiff", "default_baseline_path", "load_baseline",
           "split_findings", "write_baseline"]

BASELINE_VERSION = 1


def default_baseline_path() -> Path:
    """The checked-in baseline shipped inside the package."""
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: str | Path) -> dict[str, str]:
    """fingerprint -> justification; an absent file is an empty
    baseline (everything is new)."""
    p = Path(path)
    if not p.exists():
        return {}
    doc = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file {p}")
    waivers = doc.get("waivers", [])
    out: dict[str, str] = {}
    for entry in waivers:
        out[str(entry["fingerprint"])] = str(entry.get("justification", ""))
    return out


@dataclass(frozen=True)
class BaselineDiff:
    """Findings split against a baseline."""

    new: tuple[DeepFinding, ...]
    waived: tuple[DeepFinding, ...]
    #: Baseline fingerprints no current finding matches.
    stale: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.new


def split_findings(
    findings: list[DeepFinding], baseline: dict[str, str]
) -> BaselineDiff:
    new: list[DeepFinding] = []
    waived: list[DeepFinding] = []
    hit: set[str] = set()
    for f in findings:
        if f.fingerprint in baseline:
            hit.add(f.fingerprint)
            waived.append(f)
        else:
            new.append(f)
    stale = tuple(sorted(fp for fp in baseline if fp not in hit))
    return BaselineDiff(new=tuple(new), waived=tuple(waived), stale=stale)


def write_baseline(
    path: str | Path,
    findings: list[DeepFinding],
    previous: dict[str, str] | None = None,
    default_justification: str = "unreviewed — justify or fix",
) -> None:
    """Write the baseline for the current findings.

    Justifications of retained fingerprints are preserved; stale
    entries are pruned; new fingerprints get the placeholder
    justification for a human to edit.
    """
    previous = previous or {}
    fingerprints = sorted({f.fingerprint for f in findings})
    waivers = [
        {"fingerprint": fp,
         "justification": previous.get(fp, default_justification)}
        for fp in fingerprints
    ]
    doc = {"version": BASELINE_VERSION, "waivers": waivers}
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
