"""Whole-program dataflow analysis over the repro tree.

``repro lint --deep`` drives :func:`deep_lint`: build (or re-load from
the content-hash cache) the project symbol table and call graph, then
run the four interprocedural passes:

* **F801** determinism taint — nondeterminism sources reachable from
  the CP/allocator/traffic/crash hot paths
  (:mod:`repro.analysis.flow.determinism`);
* **F802** unit typestate — ``_bytes``/``_blocks``/``_us`` values
  crossing function boundaries into differently-united parameters,
  returns, or bindings (:mod:`repro.analysis.flow.unitflow`);
* **F803** commit-path effects — committed-image writes on paths not
  rooted at the sanctioned commit entry points
  (:mod:`repro.analysis.flow.effects`);
* **F804** seed threading — held seeds/generators dropped on the way
  into randomness-consuming callees
  (:mod:`repro.analysis.flow.seeding`).

Findings are baselined by stable fingerprint with a ratchet
(:mod:`repro.analysis.flow.baseline`): new findings fail, waived ones
are tracked, fixed ones are pruned.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from pathlib import Path

from .base import DeepFinding, FlowConfig
from .baseline import (
    BaselineDiff,
    default_baseline_path,
    load_baseline,
    split_findings,
    write_baseline,
)
from .callgraph import build_graph, load_project
from .determinism import run_determinism_taint
from .effects import run_commit_effects
from .seeding import run_seed_threading
from .unitflow import run_unit_typestate

__all__ = [
    "BaselineDiff",
    "DeepFinding",
    "DeepReport",
    "FlowConfig",
    "deep_lint",
    "default_baseline_path",
    "format_deep_findings",
    "load_baseline",
    "report_to_json",
    "split_findings",
    "write_baseline",
]

#: The passes in reporting order.
_PASSES = (
    ("F801", run_determinism_taint),
    ("F802", run_unit_typestate),
    ("F803", run_commit_effects),
    ("F804", run_seed_threading),
)


@dataclass(frozen=True)
class DeepReport:
    """Everything one ``--deep`` run produced."""

    findings: tuple[DeepFinding, ...]
    n_functions: int
    n_classes: int
    n_edges: int
    n_unresolved: int


def _sort_key(f: DeepFinding) -> tuple[str, str, int, str]:
    return (f.path, f.rule, f.line, f.fingerprint)


def deep_lint(
    paths: Iterable[str | Path],
    config: FlowConfig | None = None,
    cache_path: str | Path | None = None,
) -> DeepReport:
    """Run every flow pass over the tree rooted at ``paths``."""
    cfg = config if config is not None else FlowConfig()
    project = load_project(paths, cfg.committed_attrs, cache_path=cache_path)
    graph = build_graph(project)
    findings: list[DeepFinding] = []
    for _rule, pass_fn in _PASSES:
        findings.extend(pass_fn(graph, cfg))
    findings.sort(key=_sort_key)
    n_edges = sum(len(v) for v in graph.edges.values())
    return DeepReport(
        findings=tuple(findings),
        n_functions=len(project.functions),
        n_classes=len(project.classes),
        n_edges=n_edges,
        n_unresolved=graph.unresolved,
    )


def format_deep_findings(
    report: DeepReport, diff: BaselineDiff | None = None
) -> str:
    """Human-readable report; with a baseline diff, new findings are
    listed in full and waived ones summarized."""
    lines: list[str] = []
    shown = list(report.findings) if diff is None else list(diff.new)
    for f in shown:
        lines.append(str(f))
    by_rule: dict[str, int] = {}
    for f in report.findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items()))
    graph_note = (f"{report.n_functions} function(s), "
                  f"{report.n_edges} call edge(s)")
    if not report.findings:
        lines.append(f"flow: clean (0 findings; {graph_note})")
    else:
        lines.append(
            f"flow: {len(report.findings)} finding(s) ({summary}; "
            f"{graph_note})")
    if diff is not None:
        lines.append(
            f"baseline: {len(diff.new)} new, {len(diff.waived)} waived, "
            f"{len(diff.stale)} stale"
            + ("" if diff.ok else " — NEW FINDINGS FAIL THE RATCHET"))
        for fp in diff.stale:
            lines.append(f"  stale waiver (fixed? run --update-baseline): "
                         f"{fp}")
    return "\n".join(lines)


def report_to_json(
    report: DeepReport, diff: BaselineDiff | None = None
) -> str:
    """Deterministic JSON serialization: same tree -> same bytes."""
    doc: dict[str, object] = {
        "version": 1,
        "findings": [f.to_dict() for f in report.findings],
        "summary": {
            "functions": report.n_functions,
            "classes": report.n_classes,
            "call_edges": report.n_edges,
            "unresolved_call_sites": report.n_unresolved,
            "findings": len(report.findings),
        },
    }
    if diff is not None:
        doc["baseline"] = {
            "new": [f.fingerprint for f in diff.new],
            "waived": [f.fingerprint for f in diff.waived],
            "stale": list(diff.stale),
        }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
