"""Small fixpoint machinery shared by the flow passes.

Two reachability primitives with witness edges (for source -> sink
traces) and a generic monotone-set fixpoint used by the unit-typestate
pass.  All iteration orders are sorted, so every pass output is
deterministic for a given project.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .callgraph import CallEdge, CallGraph

__all__ = ["reach_down", "reach_up", "trace_to", "trace_from",
           "fixpoint_sets"]


def reach_down(
    graph: CallGraph, roots: list[str]
) -> dict[str, CallEdge | None]:
    """Forward reachability from ``roots`` along call edges.

    Returns ``{fqn: parent_edge}`` for every reachable function; roots
    map to None.  The BFS visits functions in sorted order so the
    parent (and therefore every reported trace) is deterministic.
    """
    parents: dict[str, CallEdge | None] = {}
    frontier = sorted(set(roots) & set(graph.project.functions))
    for root in frontier:
        parents[root] = None
    while frontier:
        next_frontier: list[str] = []
        for fqn in frontier:
            for edge in graph.out_edges(fqn):
                if edge.callee not in parents:
                    parents[edge.callee] = edge
                    next_frontier.append(edge.callee)
        frontier = sorted(set(next_frontier))
    return parents


def reach_up(
    graph: CallGraph, seeds: list[str],
    stop: Callable[[str], bool] | None = None,
) -> dict[str, CallEdge | None]:
    """Backward reachability: every function that can *reach* a seed.

    Returns ``{fqn: child_edge}`` where the edge points one step toward
    the seed (seeds map to None).  ``stop`` prunes the climb: a
    function for which it returns True is included but its callers are
    not explored through it (used to cut paths at sanctioned
    entry points).
    """
    toward: dict[str, CallEdge | None] = {}
    frontier = sorted(set(seeds) & set(graph.project.functions))
    for seed in frontier:
        toward[seed] = None
    while frontier:
        next_frontier: list[str] = []
        for fqn in frontier:
            if stop is not None and stop(fqn) and toward[fqn] is not None:
                continue
            for edge in graph.in_edges(fqn):
                if edge.caller not in toward:
                    toward[edge.caller] = edge
                    next_frontier.append(edge.caller)
        frontier = sorted(set(next_frontier))
    return toward


def trace_to(
    parents: Mapping[str, CallEdge | None], sink: str
) -> list[tuple[str, int | None]]:
    """Reconstruct the root -> ... -> ``sink`` path from a
    :func:`reach_down` parent map as ``(fqn, callsite_line)`` pairs.

    The line attached to each hop is the line *in the previous hop*
    where the call is made; the root carries None.
    """
    hops: list[tuple[str, int | None]] = []
    current: str | None = sink
    guard = 0
    while current is not None and guard < 10_000:
        guard += 1
        edge = parents.get(current)
        hops.append((current, edge.lineno if edge is not None else None))
        current = edge.caller if edge is not None else None
    hops.reverse()
    return hops


def trace_from(
    toward: Mapping[str, CallEdge | None], start: str
) -> list[tuple[str, int | None]]:
    """Reconstruct the ``start`` -> ... -> seed path from a
    :func:`reach_up` witness map, as ``(fqn, callsite_line)`` pairs
    where the line is the call made *by* that hop (seed carries None).
    """
    hops: list[tuple[str, int | None]] = []
    current: str | None = start
    guard = 0
    while current is not None and guard < 10_000:
        guard += 1
        edge = toward.get(current)
        hops.append((current, edge.lineno if edge is not None else None))
        current = edge.callee if edge is not None else None
    return hops


def fixpoint_sets(
    init: Mapping[str, frozenset[str]],
    deps: Mapping[str, list[str]],
) -> dict[str, frozenset[str]]:
    """Least fixpoint of ``out[f] = init[f] | union(out[d] for d in
    deps[f])`` — used for interprocedural return-unit inference.

    ``deps[f]`` lists the functions whose output flows into ``f``'s.
    """
    out: dict[str, frozenset[str]] = {f: s for f, s in init.items()}
    #: reverse dependency: who must be revisited when f changes.
    rdeps: dict[str, list[str]] = {}
    for f in sorted(deps):
        for d in deps[f]:
            rdeps.setdefault(d, []).append(f)
    work = sorted(out)
    while work:
        next_work: list[str] = []
        for f in work:
            merged = out.get(f, frozenset())
            for d in deps.get(f, []):
                merged = merged | out.get(d, frozenset())
            if merged != out.get(f, frozenset()):
                out[f] = merged
                next_work.extend(rdeps.get(f, []))
        work = sorted(set(next_work))
    return out
