"""F804 — seed-threading contract.

A function that *holds* a seed or generator (a ``seed``/``rng``-ish
parameter, or a local bound from ``make_rng``/``default_rng``/
``spawn``) must thread it into every callee that consumes randomness.
Calling such a callee while letting its ``seed`` parameter fall back
to a default silently re-seeds that subsystem: two components believe
they share one random stream but do not, which breaks same-seed
reproducibility in a way no single-module lint can see.

A call site satisfies the contract when the seed parameter receives
*any* argument (an explicit constant seed is visible and deliberate)
or when any argument expression is seed-ish (mentions a seed/rng name
or an RNG factory).
"""

from __future__ import annotations

from .base import DeepFinding, FlowConfig, fmt_trace
from .callgraph import CallEdge, CallGraph
from .symbols import FunctionInfo

__all__ = ["run_seed_threading"]

RULE = "F804"


def _seed_is_passed(edge: CallEdge, target: FunctionInfo) -> bool:
    site = edge.site
    seed_params = set(target.seed_params)
    params = target.params
    if target.cls is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    pos_index = 0
    for fact in site.args:
        if fact.seedish:
            return True
        if fact.keyword is not None:
            if fact.keyword in seed_params:
                return True
        else:
            if pos_index < len(params) and params[pos_index] in seed_params:
                return True
            pos_index += 1
    return False


def run_seed_threading(
    graph: CallGraph, config: FlowConfig
) -> list[DeepFinding]:
    del config  # the contract applies tree-wide
    functions = graph.project.functions
    findings: list[DeepFinding] = []
    seen: set[str] = set()
    for fqn in sorted(functions):
        fn = functions[fqn]
        if not fn.seed_params and not fn.has_local_rng:
            continue
        for edge in graph.out_edges(fqn):
            if edge.kind != "direct" or edge.site.has_star:
                continue
            if edge.callee == fqn:
                continue
            target = functions[edge.callee]
            omittable = target.seed_defaults
            if not omittable:
                continue
            if _seed_is_passed(edge, target):
                continue
            holder = ("parameter '" + fn.seed_params[0] + "'"
                      if fn.seed_params else "a locally constructed rng")
            finding = DeepFinding(
                rule=RULE,
                path=fn.path,
                line=edge.lineno,
                function=fqn,
                message=(
                    f"holds {holder} but calls '{target.fqn}' without "
                    f"threading it; '{omittable[0]}' silently falls back "
                    f"to its default and re-seeds the subsystem"
                ),
                trace=fmt_trace(graph, [(fqn, edge.lineno),
                                        (target.fqn, None)]),
                key=target.fqn,
            )
            if finding.fingerprint not in seen:
                seen.add(finding.fingerprint)
                findings.append(finding)
    return findings
