"""Project symbol table and call graph for the flow analyzer.

:func:`load_project` extracts (or re-loads from the content-hash cache)
every module under the given roots; :func:`build_graph` links the raw
call sites into a resolved :class:`CallGraph`.

Resolution strategy, in decreasing precision:

1. **Canonical dotted names** — imports are canonicalized during
   extraction, so ``make_rng(...)`` resolves straight to
   ``repro.common.rng.make_rng``; ``mod.Class(...)`` resolves to the
   class constructor through its hierarchy.
2. **``self.m()`` / ``cls.m()``** — resolved through the caller's
   class hierarchy: the nearest ancestor definitions *plus* every
   descendant override (virtual dispatch may pick any of them).
3. **Locally typed receivers** — ``st = TenantState(...); st.m()``
   binds ``st`` for the rest of the function.
4. **Class-hierarchy analysis by method name** — an unknown receiver's
   ``.m()`` resolves to every project class that defines ``m``, except
   for a stoplist of ubiquitous builtin-container method names.

``functools.partial``, pool submissions (``submit``/``map``/...) and
``Process(target=...)`` contribute ``kind != "direct"`` edges: the
wrapped callable is eventually invoked, so taint and effects must flow
through it, but its argument mapping is not checked.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .symbols import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    extract_module,
)

__all__ = ["CallEdge", "CallGraph", "Project", "build_graph", "load_project"]

#: Bump when the extraction schema changes; stale caches are discarded.
CACHE_VERSION = 1

#: Method names too generic to resolve by class-hierarchy analysis on
#: an unknown receiver: they are overwhelmingly builtin container /
#: numpy / file methods and would wire the graph into a hairball.
CHA_STOPLIST: frozenset[str] = frozenset(
    {
        "add", "all", "any", "append", "astype", "clear", "close", "copy",
        "count", "cumsum", "decode", "discard", "encode", "endswith",
        "extend", "fill", "findall", "finditer", "flush", "format", "get",
        "group", "hexdigest", "index", "insert", "item", "items", "join",
        "keys", "lower", "lstrip", "match", "max", "mean", "min", "nonzero",
        "partition", "pop", "popleft", "read", "remove", "replace",
        "reshape", "rstrip", "search", "seek", "setdefault", "sort",
        "split", "startswith", "strip", "sum", "tell", "tobytes", "tolist",
        "update", "upper", "values", "view", "write",
    }
)


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller -> callee edge."""

    caller: str
    callee: str
    lineno: int
    kind: str
    site: CallSite


@dataclass
class Project:
    """Every module's extracted symbols, fully indexed."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def index(self) -> None:
        self.functions = {}
        self.classes = {}
        for mod in self.modules.values():
            self.functions.update(mod.functions)
            self.classes.update(mod.classes)


@dataclass
class CallGraph:
    """Resolved edges in both directions, plus the owning project."""

    project: Project
    edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    callers: dict[str, list[CallEdge]] = field(default_factory=dict)
    #: Call sites that resolved to no project function (external or
    #: builtin callees) — kept for diagnostics.
    unresolved: int = 0

    def out_edges(self, fqn: str) -> list[CallEdge]:
        return self.edges.get(fqn, [])

    def in_edges(self, fqn: str) -> list[CallEdge]:
        return self.callers.get(fqn, [])

    def entry_points(self) -> list[str]:
        """Functions with no project-internal callers, sorted."""
        return sorted(f for f in self.project.functions
                      if not self.callers.get(f))


def _iter_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def _read_cache(cache_path: Path) -> dict[str, dict[str, object]]:
    try:
        doc = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION:
        return {}
    entries = doc.get("entries")
    return entries if isinstance(entries, dict) else {}


def load_project(
    paths: Iterable[str | Path],
    committed_attrs: frozenset[str],
    cache_path: str | Path | None = None,
) -> Project:
    """Extract every module under ``paths``, reusing cached extractions
    whose source hash is unchanged.

    The cache holds only per-file extraction output keyed by the
    sha256 of the file contents, so it can never go stale silently and
    never changes the analysis result — a cold run and a warm run
    produce identical projects.
    """
    cached: dict[str, dict[str, object]] = {}
    cache_file = Path(cache_path) if cache_path is not None else None
    if cache_file is not None:
        cached = _read_cache(cache_file)

    project = Project()
    fresh_entries: dict[str, dict[str, object]] = {}
    dirty = False
    for file in _iter_files(paths):
        raw = file.read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        key = str(file)
        entry = cached.get(key)
        if (isinstance(entry, dict) and entry.get("sha256") == digest
                and isinstance(entry.get("module"), dict)):
            mod = ModuleInfo.from_dict(entry["module"])  # type: ignore[arg-type]
        else:
            mod = extract_module(raw.decode("utf-8"), file, committed_attrs)
            dirty = True
        project.modules[mod.module] = mod
        fresh_entries[key] = {"sha256": digest, "module": mod.to_dict()}

    if cache_file is not None and (dirty or set(fresh_entries) != set(cached)):
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        cache_file.write_text(
            json.dumps({"version": CACHE_VERSION, "entries": fresh_entries},
                       sort_keys=True),
            encoding="utf-8",
        )
    project.index()
    return project


class _Resolver:
    """Resolves raw call sites against the project indexes."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: (module, simple name) -> fqn for every function in a module.
        self.by_module_name: dict[tuple[str, str], str] = {}
        #: method name -> sorted fqns of every method with that name.
        self.by_method_name: dict[str, list[str]] = {}
        #: class simple name -> sorted class fqns.
        self.class_by_name: dict[str, list[str]] = {}
        #: class fqn -> direct subclass fqns.
        self.subclasses: dict[str, list[str]] = {}
        for fn in project.functions.values():
            self.by_module_name.setdefault((fn.module, fn.name), fn.fqn)
            if fn.cls is not None:
                self.by_method_name.setdefault(fn.name, []).append(fn.fqn)
        for lst in self.by_method_name.values():
            lst.sort()
        for cls in project.classes.values():
            self.class_by_name.setdefault(cls.name, []).append(cls.fqn)
        for lst in self.class_by_name.values():
            lst.sort()
        for cls in project.classes.values():
            for base in cls.bases:
                base_fqn = self._class_fqn(base)
                if base_fqn is not None:
                    self.subclasses.setdefault(base_fqn, []).append(cls.fqn)
        for lst in self.subclasses.values():
            lst.sort()

    def _class_fqn(self, dotted: str) -> str | None:
        if dotted in self.project.classes:
            return dotted
        candidates = self.class_by_name.get(dotted.split(".")[-1], [])
        return candidates[0] if len(candidates) == 1 else None

    def _ancestors(self, cls_fqn: str) -> list[str]:
        seen: list[str] = []
        work = [cls_fqn]
        while work:
            current = work.pop(0)
            if current in seen:
                continue
            seen.append(current)
            info = self.project.classes.get(current)
            if info is None:
                continue
            for base in info.bases:
                base_fqn = self._class_fqn(base)
                if base_fqn is not None:
                    work.append(base_fqn)
        return seen

    def _descendants(self, cls_fqn: str) -> list[str]:
        seen: list[str] = []
        work = list(self.subclasses.get(cls_fqn, []))
        while work:
            current = work.pop(0)
            if current in seen:
                continue
            seen.append(current)
            work.extend(self.subclasses.get(current, []))
        return seen

    def resolve_method(self, cls_fqn: str, name: str) -> list[str]:
        """Definitions of ``name`` visible from ``cls_fqn``: nearest
        ancestor definitions plus descendant overrides."""
        targets: list[str] = []
        for candidate in self._ancestors(cls_fqn) + self._descendants(cls_fqn):
            info = self.project.classes.get(candidate)
            if info is not None and name in info.methods:
                fqn = info.methods[name]
                if fqn not in targets:
                    targets.append(fqn)
        return targets

    def resolve_ctor(self, cls_fqn: str) -> list[str]:
        for candidate in self._ancestors(cls_fqn):
            info = self.project.classes.get(candidate)
            if info is not None and "__init__" in info.methods:
                return [info.methods["__init__"]]
        return []

    def resolve(self, caller: FunctionInfo, site: CallSite) -> list[str]:
        dotted = site.dotted
        parts = dotted.split(".")
        # 1. fully qualified function or class.
        if dotted in self.project.functions:
            return [dotted]
        if dotted in self.project.classes:
            return self.resolve_ctor(dotted)
        # 2. simple name: same-module function or class.
        if len(parts) == 1:
            fqn = self.by_module_name.get((caller.module, dotted))
            if fqn is not None:
                return [fqn]
            cls_fqn = f"{caller.module}.{dotted}"
            if cls_fqn in self.project.classes:
                return self.resolve_ctor(cls_fqn)
            return []
        # 3. method call on a typed receiver.
        head, tail = parts[0], parts[-1]
        if len(parts) == 2:
            if head in ("self", "cls") and caller.cls is not None:
                cls_fqn = f"{caller.module}.{caller.cls}"
                targets = self.resolve_method(cls_fqn, tail)
                if targets:
                    return targets
            receiver_cls = caller.local_types.get(head)
            if receiver_cls is not None:
                cls_fqn2 = self._class_fqn(receiver_cls)
                if cls_fqn2 is not None:
                    targets = self.resolve_method(cls_fqn2, tail)
                    if targets:
                        return targets
        # 4. dotted tail might be a module-level function referenced
        #    through a partially-canonical prefix (``rng.make_rng``).
        prefix = ".".join(parts[:-1])
        for module in (prefix, f"{caller.module}.{prefix}"):
            fqn2 = self.by_module_name.get((module, tail))
            if fqn2 is not None:
                return [fqn2]
        # 5. class-hierarchy analysis by method name.
        if tail not in CHA_STOPLIST and not dotted.startswith(
                ("numpy.", "np.")):
            return list(self.by_method_name.get(tail, []))
        return []


def build_graph(project: Project) -> CallGraph:
    """Link every raw call site into a resolved call graph."""
    resolver = _Resolver(project)
    graph = CallGraph(project=project)
    for fqn in sorted(project.functions):
        fn = project.functions[fqn]
        seen: set[tuple[str, int, str]] = set()
        for site in fn.calls:
            targets = resolver.resolve(fn, site)
            if not targets:
                graph.unresolved += 1
                continue
            for target in targets:
                key = (target, site.lineno, site.kind)
                if key in seen:
                    continue
                seen.add(key)
                edge = CallEdge(caller=fqn, callee=target,
                                lineno=site.lineno, kind=site.kind, site=site)
                graph.edges.setdefault(fqn, []).append(edge)
                graph.callers.setdefault(target, []).append(edge)
    return graph
