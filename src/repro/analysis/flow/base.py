"""Shared types for the flow passes: configuration and findings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..rules import COMMITTED_IMAGE_ATTRS
from .callgraph import CallGraph
from .symbols import FunctionInfo

__all__ = ["DeepFinding", "FlowConfig", "fmt_trace", "shift_down_trace"]


@dataclass(frozen=True)
class FlowConfig:
    """Where the whole-program passes anchor their roots and sinks.

    The defaults describe the repro tree; fixture tests substitute
    their own roots so each pass can be exercised on a toy project.
    """

    #: Modules whose functions are the simulation hot paths: anything
    #: they (transitively) call must be deterministic (F801).
    hot_root_modules: tuple[str, ...] = (
        "repro.fs.cp",
        "repro.core.allocator",
        "repro.traffic.engine",
        "repro.crash.explorer",
        "repro.crash.under_load",
    )
    #: Extra hot-path root functions by fqn.
    hot_root_fqns: tuple[str, ...] = ()
    #: Functions whose bodies are declared deterministic even though
    #: they syntactically touch a source — the purity whitelist.  Each
    #: entry carries a justification (documented in DESIGN.md §8).
    pure_fqns: dict[str, str] = field(default_factory=lambda: {
        "repro.fs.mount.simulate_mount": (
            "perf_counter only fills MountReport.build_wall_s, a "
            "wall-clock reporting field (fig10 table); simulated state "
            "is driven purely by modeled metafile-read microseconds"
        ),
    })
    #: Modules forming the sanctioned commit path: committed-image
    #: writes rooted here are legal (F803).
    sanctioned_commit_modules: tuple[str, ...] = ("repro.crash.persistence",)
    #: Extra sanctioned entry-point fqns.
    sanctioned_commit_fqns: tuple[str, ...] = ()
    #: Attribute names that form the committed image.
    committed_attrs: frozenset[str] = COMMITTED_IMAGE_ATTRS

    def is_hot_root(self, fn: FunctionInfo) -> bool:
        return (fn.module in self.hot_root_modules
                or fn.fqn in self.hot_root_fqns)

    def is_sanctioned(self, fn: FunctionInfo) -> bool:
        return (fn.module in self.sanctioned_commit_modules
                or fn.fqn in self.sanctioned_commit_fqns)


@dataclass(frozen=True)
class DeepFinding:
    """One interprocedural finding with its source -> sink trace."""

    rule: str
    path: str
    line: int
    function: str
    message: str
    #: Human-readable hops, outermost first.
    trace: tuple[str, ...]
    #: Stable detail used for baseline fingerprinting; never contains
    #: line numbers so unrelated edits don't churn the baseline.
    key: str

    @property
    def fingerprint(self) -> str:
        return f"{self.rule} {self.function} {self.key}"

    def __str__(self) -> str:
        lines = [f"{self.path}:{self.line}: {self.rule} {self.message}"]
        lines.extend(f"    {hop}" for hop in self.trace)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "trace": list(self.trace),
            "fingerprint": self.fingerprint,
        }


def fmt_trace(
    graph: CallGraph, hops: list[tuple[str, int | None]]
) -> tuple[str, ...]:
    """Render trace hops as ``fqn (path:line)`` strings.

    Each hop carries the line *in its own file* where it calls the
    next hop (or where the interesting statement sits); None falls
    back to the function's definition line.
    """
    out: list[str] = []
    for i, (fqn, line) in enumerate(hops):
        fn = graph.project.functions.get(fqn)
        if fn is None:
            out.append(fqn)
            continue
        shown = line if line is not None else fn.lineno
        prefix = "-> " if i else ""
        out.append(f"{prefix}{fqn} ({fn.path}:{shown})")
    return tuple(out)


def shift_down_trace(
    hops: list[tuple[str, int | None]]
) -> list[tuple[str, int | None]]:
    """Convert a :func:`repro.analysis.flow.engine.trace_to` path
    (call line recorded on the *callee* hop, i.e. in the caller's
    file) into own-frame form for :func:`fmt_trace`."""
    shifted: list[tuple[str, int | None]] = []
    for i, (fqn, _line) in enumerate(hops):
        nxt = hops[i + 1][1] if i + 1 < len(hops) else None
        shifted.append((fqn, nxt))
    return shifted
