"""F803 — commit-path effect checking.

Generalizes simlint's syntactic C601: a committed-image attribute
write is legal only when *every* call path reaching it is rooted in
the sanctioned commit entry points
(:attr:`FlowConfig.sanctioned_commit_modules` — the crash-consistency
persistence layer).  A helper that performs the write on behalf of an
unsanctioned caller — the "mutate via helper" hole — is reported with
the launder path: unsanctioned entry -> ... -> writer.
"""

from __future__ import annotations

from .base import DeepFinding, FlowConfig, fmt_trace
from .callgraph import CallGraph
from .engine import reach_up, trace_from

__all__ = ["run_commit_effects"]

RULE = "F803"


def run_commit_effects(
    graph: CallGraph, config: FlowConfig
) -> list[DeepFinding]:
    functions = graph.project.functions
    findings: list[DeepFinding] = []
    writers = sorted(
        f for f, fn in functions.items()
        if fn.committed_writes and not config.is_sanctioned(fn)
    )
    for writer in writers:
        fn = functions[writer]
        # Climb the caller chains, cutting at sanctioned functions:
        # a path that enters the writer *through* the commit path is
        # legal and must not be explored further upward.
        toward = reach_up(
            graph, [writer],
            stop=lambda f: config.is_sanctioned(functions[f]),
        )
        bad_entries = sorted(
            f for f in toward
            if not graph.in_edges(f) and not config.is_sanctioned(functions[f])
        )
        if not bad_entries:
            continue
        entry = bad_entries[0]
        hops = trace_from(toward, entry)
        attr, line = fn.committed_writes[0]
        trace = fmt_trace(graph, hops[:-1] + [(writer, line)])
        extra = (f" (and {len(bad_entries) - 1} more unsanctioned entry "
                 f"point(s))" if len(bad_entries) > 1 else "")
        findings.append(DeepFinding(
            rule=RULE,
            path=fn.path,
            line=line,
            function=writer,
            message=(
                f"committed-image attribute '.{attr}' is written on a "
                f"path rooted at unsanctioned entry point '{entry}'{extra}; "
                f"route the mutation through PersistenceModel.commit()"
            ),
            trace=trace,
            key=f"{attr}:{entry}",
        ))
    return findings
