"""F802 — interprocedural unit typestate.

Unit tags (``_bytes``, ``_blocks``, ``_us``, ...) are propagated
through returns, assignments and call arguments:

* **return-unit inference** — a least fixpoint over ``return g(...)``
  chains gives every function the set of unit tags it can return;
* **call-site checking** — an argument carrying unit X passed to a
  parameter named with unit Y != X is a cross-function unit mix that
  the purely syntactic U301 cannot see;
* **assignment checking** — ``total_bytes = free_blocks(...)`` style
  bindings compare the target suffix against the callee's inferred
  return unit;
* **signature checking** — a function whose *name* carries a unit must
  not return a value carrying a different unit.
"""

from __future__ import annotations

from .base import DeepFinding, FlowConfig, fmt_trace
from .callgraph import CallEdge, CallGraph
from .engine import fixpoint_sets
from .symbols import FunctionInfo, unit_suffix_of

__all__ = ["infer_return_units", "run_unit_typestate"]

RULE = "F802"


def infer_return_units(graph: CallGraph) -> dict[str, frozenset[str]]:
    """Unit tags each function can return (interprocedural fixpoint)."""
    functions = graph.project.functions
    init: dict[str, frozenset[str]] = {}
    deps: dict[str, list[str]] = {}
    for fqn in sorted(functions):
        fn = functions[fqn]
        init[fqn] = frozenset(fn.return_units)
        returned = set(fn.return_calls)
        if returned:
            deps[fqn] = sorted(
                {e.callee for e in graph.out_edges(fqn)
                 if e.kind == "direct" and e.site.dotted in returned}
            )
    return fixpoint_sets(init, deps)


def _effective_params(fn: FunctionInfo) -> tuple[str, ...]:
    """Positional parameters as seen by a caller (``self``/``cls``
    dropped for methods)."""
    params = fn.params
    if fn.cls is not None and params and params[0] in ("self", "cls"):
        return params[1:]
    return params


def _arg_unit(
    fact_unit: str | None,
    call_dotted: str | None,
    caller: FunctionInfo,
    graph: CallGraph,
    ret_units: dict[str, frozenset[str]],
) -> str | None:
    """The unit an argument expression carries: its syntactic suffix,
    or the unique inferred return unit of the called function."""
    if fact_unit is not None:
        return fact_unit
    if call_dotted is None:
        return None
    target = _resolve_value_call(call_dotted, caller, graph)
    if target is None:
        return None
    units = ret_units.get(target, frozenset())
    return next(iter(units)) if len(units) == 1 else None


def _resolve_value_call(
    dotted: str, caller: FunctionInfo, graph: CallGraph
) -> str | None:
    """Resolve a value-producing call (argument / assignment RHS) to a
    unique project function, mirroring the high-precision resolver
    cases only."""
    functions = graph.project.functions
    if dotted in functions:
        return dotted
    if "." not in dotted:
        local = f"{caller.module}.{dotted}"
        if local in functions:
            return local
    # A method call recorded at this site resolves through the graph's
    # own edges (same dotted string, direct kind, unique target).
    candidates = sorted(
        {e.callee for e in graph.out_edges(caller.fqn)
         if e.kind == "direct" and e.site.dotted == dotted}
    )
    return candidates[0] if len(candidates) == 1 else None


def _check_call_site(
    fn: FunctionInfo,
    edge: CallEdge,
    graph: CallGraph,
    ret_units: dict[str, frozenset[str]],
    findings: list[DeepFinding],
    seen: set[str],
) -> None:
    target = graph.project.functions[edge.callee]
    params = _effective_params(target)
    pos_index = 0
    for fact in edge.site.args:
        if fact.keyword is None:
            param = params[pos_index] if pos_index < len(params) else None
            pos_index += 1
        else:
            param = (fact.keyword
                     if fact.keyword in target.params + target.kwonly
                     else None)
        if param is None:
            continue
        param_unit = unit_suffix_of(param)
        if param_unit is None:
            continue
        arg_unit = _arg_unit(fact.unit, fact.call_dotted, fn, graph,
                             ret_units)
        if arg_unit is None or arg_unit == param_unit:
            continue
        finding = DeepFinding(
            rule=RULE,
            path=fn.path,
            line=edge.lineno,
            function=fn.fqn,
            message=(
                f"argument carrying {arg_unit} passed to parameter "
                f"'{param}' ({param_unit}) of '{target.fqn}'; convert "
                f"through repro.common.units first"
            ),
            trace=fmt_trace(graph, [(fn.fqn, edge.lineno),
                                    (target.fqn, None)]),
            key=f"{target.fqn}:{param}:{arg_unit}",
        )
        if finding.fingerprint not in seen:
            seen.add(finding.fingerprint)
            findings.append(finding)


def run_unit_typestate(
    graph: CallGraph, config: FlowConfig
) -> list[DeepFinding]:
    del config  # roots/sinks are not needed: units are checked everywhere
    functions = graph.project.functions
    ret_units = infer_return_units(graph)
    findings: list[DeepFinding] = []
    seen: set[str] = set()
    for fqn in sorted(functions):
        fn = functions[fqn]
        for edge in graph.out_edges(fqn):
            if edge.kind == "direct" and not edge.site.has_star:
                _check_call_site(fn, edge, graph, ret_units, findings, seen)
        # ``x_bytes = f(...)`` against f's inferred return unit.
        for target_unit, dotted, lineno in fn.unit_assigns:
            callee = _resolve_value_call(dotted, fn, graph)
            if callee is None:
                continue
            units = ret_units.get(callee, frozenset())
            if len(units) == 1:
                (ret_unit,) = sorted(units)
                if ret_unit != target_unit:
                    finding = DeepFinding(
                        rule=RULE, path=fn.path, line=lineno, function=fqn,
                        message=(
                            f"value returned by '{callee}' carries "
                            f"{ret_unit} but is bound to a {target_unit} "
                            f"name; convert through repro.common.units first"
                        ),
                        trace=fmt_trace(graph, [(fqn, lineno),
                                                (callee, None)]),
                        key=f"assign:{callee}:{target_unit}",
                    )
                    if finding.fingerprint not in seen:
                        seen.add(finding.fingerprint)
                        findings.append(finding)
        # Function whose name names a unit must return that unit.
        name_unit = unit_suffix_of(fn.name)
        if name_unit is not None:
            for ret_unit in sorted(ret_units.get(fqn, frozenset())):
                if ret_unit != name_unit and "_to_" not in fn.name:
                    finding = DeepFinding(
                        rule=RULE, path=fn.path, line=fn.lineno, function=fqn,
                        message=(
                            f"function named with {name_unit} returns a "
                            f"{ret_unit} value"
                        ),
                        trace=fmt_trace(graph, [(fqn, None)]),
                        key=f"return:{ret_unit}",
                    )
                    if finding.fingerprint not in seen:
                        seen.add(finding.fingerprint)
                        findings.append(finding)
    return findings
