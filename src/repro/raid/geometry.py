"""RAID group geometry and VBN <-> (disk, DBN) mapping.

ONTAP arranges HDDs/SSDs into RAID groups of N data devices plus P
parity devices (paper section 2.1; Figure 2 shows 3 data + 1 parity).
WAFL "maintains the mapping of physical VBN ranges to storage devices
based on their RAID topology" (paper section 3.1): each data device owns
a contiguous range of physical VBNs, and a *stripe* is the set of
blocks, one per device, sharing the same device block number (DBN) and
therefore the same parity block.

This module is purely geometric: it knows nothing about device timing
or free space.  All mappings are vectorized over NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import GeometryError

__all__ = ["RAIDGeometry"]


@dataclass(frozen=True)
class RAIDGeometry:
    """Geometry of one RAID group.

    Parameters
    ----------
    ndata:
        Number of data devices (VBN-bearing).
    nparity:
        Number of parity devices (1 = RAID 4, 2 = RAID-DP, 3 = RAID-TEC).
    blocks_per_disk:
        4 KiB data blocks per device; equals the number of stripes.
    mirrored:
        Mirrored group (RAID 1 / SyncMirror-style): every "parity"
        device holds a full copy of its data device, so writes never
        pay a parity read-modify-write and ``nparity`` must equal
        ``ndata``.
    """

    ndata: int
    nparity: int
    blocks_per_disk: int
    mirrored: bool = False

    def __post_init__(self) -> None:
        if self.ndata < 1:
            raise GeometryError("a RAID group needs at least one data device")
        if self.nparity < 0:
            raise GeometryError("negative parity device count")
        if self.blocks_per_disk < 8 or self.blocks_per_disk % 8:
            raise GeometryError("blocks_per_disk must be a positive multiple of 8")
        if self.mirrored and self.nparity != self.ndata:
            raise GeometryError(
                "a mirrored group needs one mirror device per data device "
                f"(ndata={self.ndata}, nparity={self.nparity})"
            )

    # ------------------------------------------------------------------
    @property
    def ndisks(self) -> int:
        """Total devices in the group (data + parity)."""
        return self.ndata + self.nparity

    @property
    def stripes(self) -> int:
        """Number of stripes (== blocks per device)."""
        return self.blocks_per_disk

    @property
    def data_blocks(self) -> int:
        """Size of this group's physical VBN space in blocks."""
        return self.ndata * self.blocks_per_disk

    # ------------------------------------------------------------------
    # VBN <-> (disk, dbn).  VBNs are numbered disk-major within the
    # group: data disk d owns VBNs [d * blocks_per_disk,
    # (d+1) * blocks_per_disk).  Stripe s is the set {(d, s) for all d}.
    # ------------------------------------------------------------------
    def disk_of(self, vbns: np.ndarray | int) -> np.ndarray:
        """Data-disk index for each group-relative VBN."""
        vbns = np.asarray(vbns, dtype=np.int64)
        return vbns // self.blocks_per_disk

    def dbn_of(self, vbns: np.ndarray | int) -> np.ndarray:
        """Device block number (== stripe index) for each VBN."""
        vbns = np.asarray(vbns, dtype=np.int64)
        return vbns % self.blocks_per_disk

    def stripe_of(self, vbns: np.ndarray | int) -> np.ndarray:
        """Stripe index for each VBN (alias of :meth:`dbn_of`)."""
        return self.dbn_of(vbns)

    def vbn(self, disk: np.ndarray | int, dbn: np.ndarray | int) -> np.ndarray:
        """Group-relative VBN for (data disk, DBN) pairs."""
        disk = np.asarray(disk, dtype=np.int64)
        dbn = np.asarray(dbn, dtype=np.int64)
        if np.any((disk < 0) | (disk >= self.ndata)):
            raise GeometryError("data disk index out of range")
        if np.any((dbn < 0) | (dbn >= self.blocks_per_disk)):
            raise GeometryError("DBN out of range")
        return disk * self.blocks_per_disk + dbn

    def stripe_vbns(self, stripe: int) -> np.ndarray:
        """All data VBNs belonging to ``stripe``, one per data disk."""
        if not 0 <= stripe < self.stripes:
            raise GeometryError(f"stripe {stripe} out of range [0, {self.stripes})")
        return np.arange(self.ndata, dtype=np.int64) * self.blocks_per_disk + stripe

    def stripe_range_vbns(self, start_stripe: int, stop_stripe: int) -> list[tuple[int, int]]:
        """Per-disk ``(vbn_start, vbn_stop)`` ranges covering stripes
        ``[start_stripe, stop_stripe)`` — the VBN extent of a
        stripe-defined allocation area (Figure 3)."""
        if not 0 <= start_stripe <= stop_stripe <= self.stripes:
            raise GeometryError(f"bad stripe range [{start_stripe}, {stop_stripe})")
        return [
            (d * self.blocks_per_disk + start_stripe, d * self.blocks_per_disk + stop_stripe)
            for d in range(self.ndata)
        ]
