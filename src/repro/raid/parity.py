"""Stripe-write classification and parity I/O accounting.

A *full stripe write* lets RAID compute parity without additional
reads; a *partial stripe write* forces RAID to read blocks from the
stripe first (paper section 2.3, Figure 1).  Given the set of VBNs a
consistency point writes into one RAID group, this module classifies
every touched stripe and charges the extra parity reads using the
cheaper of the two standard parity-update strategies:

* **subtractive** — read the old data for the k overwritten blocks plus
  the old parity (k + nparity reads);
* **reconstructive** — read the ndata - k untouched data blocks.

It also computes per-disk write-chain statistics: contiguous runs of
DBNs that a device can absorb as a single large I/O ("long write
chains", paper section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..common.constants import TETRIS_STRIPES
from .geometry import RAIDGeometry
from .tetris import count_tetrises

__all__ = ["StripeWriteStats", "analyze_raid_writes", "chain_lengths"]


@dataclass
class StripeWriteStats:
    """Outcome of analyzing one CP's writes to one RAID group."""

    #: Data blocks written (host writes landing on data disks).
    data_blocks: int = 0
    #: Stripes touched by at least one data-block write.
    stripes_written: int = 0
    #: Stripes in which every data block was written together.
    full_stripes: int = 0
    #: Stripes written only partially (require parity reads).
    partial_stripes: int = 0
    #: Parity blocks written (stripes_written * nparity).
    parity_blocks_written: int = 0
    #: Blocks read to recompute parity for partial stripes.
    parity_blocks_read: int = 0
    #: Distinct tetrises (64-stripe write units) touched.
    tetrises: int = 0
    #: Stripes written while the group was missing devices (every
    #: touched stripe counts while degraded).
    degraded_stripes: int = 0
    #: Extra reads forced by degraded-mode parity computation: with a
    #: device missing, parity for a touched stripe can only be computed
    #: from the surviving members, so the group reads every surviving
    #: block it did not write (reconstruct-on-write).
    reconstruction_reads: int = 0
    #: Blocks written per data disk.
    blocks_per_disk: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Contiguous write chains per data disk.
    chains_per_disk: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Disk-major sorted view of the analyzed writes (disk ascending,
    #: DBN ascending within a disk).  Computed once for chain analysis
    #: and reused by device pricing so it never re-sorts per disk.
    sorted_disks: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    sorted_dbns: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Sorted unique stripe indexes touched (parity devices write these).
    touched_stripes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def total_chains(self) -> int:
        """Write chains summed over data disks (plus parity chains are
        proportional to stripes and tracked separately)."""
        return int(self.chains_per_disk.sum()) if self.chains_per_disk.size else 0

    @property
    def full_stripe_fraction(self) -> float:
        """Fraction of written stripes that were full."""
        return self.full_stripes / self.stripes_written if self.stripes_written else 0.0

    @property
    def mean_chain_length(self) -> float:
        """Average blocks per write chain across data disks."""
        chains = self.total_chains
        return self.data_blocks / chains if chains else 0.0


def chain_lengths(dbns: np.ndarray) -> np.ndarray:
    """Lengths of maximal runs of consecutive DBNs.

    ``dbns`` must be sorted and unique; returns an array of run lengths
    whose sum equals ``dbns.size``.
    """
    dbns = np.asarray(dbns, dtype=np.int64)
    if dbns.size == 0:
        return np.empty(0, dtype=np.int64)
    breaks = np.flatnonzero(np.diff(dbns) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks + 1, [dbns.size]))
    return stops - starts


def analyze_raid_writes(
    geometry: RAIDGeometry,
    vbns: np.ndarray,
    *,
    stripes_per_tetris: int = TETRIS_STRIPES,
    failed_disks: int = 0,
) -> StripeWriteStats:
    """Classify one CP's writes (group-relative ``vbns``) against
    ``geometry`` and charge parity I/O.

    The input VBNs must be unique (each block is written once per CP —
    guaranteed by the COW allocator).

    ``failed_disks`` puts the analysis into degraded mode: the group is
    missing that many members (data or parity), so the subtractive
    parity strategy is unavailable (old data/parity may live on the
    missing device) and every touched stripe's parity is recomputed
    from the surviving blocks that were not written this CP.  The extra
    reads are charged as :attr:`StripeWriteStats.reconstruction_reads`
    (and folded into ``parity_blocks_read`` so existing latency
    accounting sees them).  The caller must stay within the parity
    budget (``failed_disks <= nparity``).
    """
    vbns = np.asarray(vbns, dtype=np.int64)
    stats = StripeWriteStats(
        blocks_per_disk=np.zeros(geometry.ndata, dtype=np.int64),
        chains_per_disk=np.zeros(geometry.ndata, dtype=np.int64),
    )
    if vbns.size == 0:
        return stats
    with obs.span("raid.analyze", blocks=int(vbns.size), degraded=failed_disks):
        return _analyze(geometry, vbns, stats, stripes_per_tetris, failed_disks)


def _analyze(
    geometry: RAIDGeometry,
    vbns: np.ndarray,
    stats: StripeWriteStats,
    stripes_per_tetris: int,
    failed_disks: int,
) -> StripeWriteStats:
    # VBNs are disk-major (vbn = disk * blocks_per_disk + dbn), so one
    # plain sort of the VBNs *is* the (disk, dbn) lexicographic order;
    # everything below derives from it instead of sorting per key.
    bpd = geometry.blocks_per_disk
    sv = np.sort(vbns)
    sd = sv // bpd
    sb = sv % bpd

    # Stripe occupancy: how many of each touched stripe's data blocks
    # were written in this CP.  The touched stripes live in a narrow
    # DBN window, so a bincount over that window beats a second sort.
    dmin = int(sb.min())
    occupancy = np.bincount(sb - dmin)
    touched_off = np.flatnonzero(occupancy)
    touched = touched_off + dmin
    counts = occupancy[touched_off]
    stats.data_blocks = int(vbns.size)
    stats.stripes_written = int(touched.size)
    full = counts == geometry.ndata
    stats.full_stripes = int(full.sum())
    stats.partial_stripes = stats.stripes_written - stats.full_stripes
    # A mirror device copies exactly its twin's written blocks; parity
    # devices write one block per touched stripe.
    stats.parity_blocks_written = (
        stats.data_blocks
        if geometry.mirrored
        else stats.stripes_written * geometry.nparity
    )

    if failed_disks:
        # Degraded mode: read every surviving member block not written
        # this CP, for every touched stripe (full stripes included —
        # their parity must still encode the missing device's data).
        survivors = geometry.ndata + geometry.nparity - failed_disks
        reads = np.maximum(survivors - counts, 0)
        stats.reconstruction_reads = int(reads.sum())
        stats.parity_blocks_read = stats.reconstruction_reads
        stats.degraded_stripes = stats.stripes_written
    elif not geometry.mirrored:
        # Parity reads for partial stripes: min(subtractive, reconstructive).
        # Mirrored groups skip this entirely: a mirror write is a plain
        # copy to the twin device, never a parity read-modify-write.
        k = counts[~full]
        if k.size:
            subtractive = k + geometry.nparity
            reconstructive = geometry.ndata - k
            stats.parity_blocks_read = int(np.minimum(subtractive, reconstructive).sum())

    stats.tetrises = count_tetrises(touched, stripes_per_tetris)

    # Per-disk blocks and chains.
    disk_bounds = np.searchsorted(sv, np.arange(geometry.ndata + 1) * bpd)
    stats.blocks_per_disk = np.diff(disk_bounds)
    stats.sorted_disks, stats.sorted_dbns = sd, sb
    stats.touched_stripes = touched
    if sd.size:
        # A chain breaks where the disk changes or the DBN is not
        # consecutive within the same disk.
        breaks = (np.diff(sd) != 0) | (np.diff(sb) != 1)
        chain_start_idx = np.concatenate(([0], np.flatnonzero(breaks) + 1))
        chain_disks = sd[chain_start_idx]
        stats.chains_per_disk = np.bincount(chain_disks, minlength=geometry.ndata).astype(
            np.int64
        )
    if obs.active():
        obs.count("raid.write_chains", stats.total_chains)
        if stats.reconstruction_reads:
            obs.count("raid.reconstruction_reads", stats.reconstruction_reads)
    return stats
