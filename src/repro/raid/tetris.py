"""Tetris accounting.

A *tetris* is the unit of write I/O sent from WAFL to a RAID group,
composed of 64 consecutive stripes (paper section 4.2).  Tetrises
written to fragmented regions are inefficient because they contain
partial stripes; Figure 7 reports both blocks/s per disk and tetrises/s
per RAID group, so the simulator must count tetrises exactly.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..common.arrayops import sorted_unique
from ..common.constants import TETRIS_STRIPES

__all__ = ["tetris_ids", "count_tetrises", "TETRIS_STRIPES"]


def tetris_ids(stripes: np.ndarray, stripes_per_tetris: int = TETRIS_STRIPES) -> np.ndarray:
    """Distinct tetris indices touched by the given stripe indices."""
    stripes = np.asarray(stripes, dtype=np.int64)
    if stripes.size == 0:
        return np.empty(0, dtype=np.int64)
    return sorted_unique(stripes // stripes_per_tetris)


def count_tetrises(stripes: np.ndarray, stripes_per_tetris: int = TETRIS_STRIPES) -> int:
    """Number of distinct tetrises touched by the given stripe indices."""
    n = int(tetris_ids(stripes, stripes_per_tetris).size)
    if n:
        obs.count("raid.tetrises", n)
    return n
