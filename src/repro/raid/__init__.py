"""RAID substrate: geometry, stripe/parity accounting, tetrises
(paper sections 2.1, 2.3, 4.2)."""

from .geometry import RAIDGeometry
from .parity import StripeWriteStats, analyze_raid_writes, chain_lengths
from .tetris import TETRIS_STRIPES, count_tetrises, tetris_ids

__all__ = [
    "RAIDGeometry",
    "StripeWriteStats",
    "analyze_raid_writes",
    "chain_lengths",
    "TETRIS_STRIPES",
    "count_tetrises",
    "tetris_ids",
]
