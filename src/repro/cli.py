"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's evaluation figures and runs small demos without
pytest.  ``--quick`` shrinks each experiment for interactive use (the
shipped EXPERIMENTS.md numbers come from the full-size benchmark runs).
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.common import constants as c

    print(f"repro {repro.__version__} — reproduction of 'Efficient Search for "
          f"Free Blocks in the WAFL File System' (ICPP 2018)")
    print()
    print("modelling constants:")
    for name in (
        "BLOCK_SIZE",
        "BITS_PER_BITMAP_BLOCK",
        "DEFAULT_RAID_AA_STRIPES",
        "RAID_AGNOSTIC_AA_BLOCKS",
        "TETRIS_STRIPES",
        "HBPS_BIN_WIDTH",
        "HBPS_LIST_CAPACITY",
        "TOPAA_RAID_AWARE_ENTRIES",
        "AZCS_REGION_BLOCKS",
    ):
        print(f"  {name:26s} = {getattr(c, name)}")
    print()
    print("commands: fig6 fig7 fig8 fig9 fig10 all bench profile traffic "
          "faults crash lint audit quickstart info")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Parallel benchmark sweep with JSON perf-trajectory output."""
    import os

    from repro.bench.runner import (
        ALL_EXPERIMENTS,
        compare_to_baseline,
        perf_regression,
        run_bench,
        write_results,
    )

    workers = args.workers
    if workers <= 0:
        workers = min(8, os.cpu_count() or 1)
    experiments = args.experiments or None
    print(f"bench: {', '.join(experiments or ALL_EXPERIMENTS)} "
          f"({'quick' if args.quick else 'full'}, {workers} worker(s)"
          + (", audited" if args.audit else "")
          + (", traced" if args.trace else "") + ")")

    def progress(key: str, res: dict) -> None:
        wall = res["timing"]["wall_s"]
        cap = res["metrics"].get("capacity_ops") if isinstance(res["metrics"], dict) else None
        extra = f", {cap:,.0f} ops/s peak" if cap else ""
        print(f"  [done] {key:40s} {wall:7.2f}s{extra}")

    doc = run_bench(
        quick=args.quick,
        workers=workers,
        experiments=experiments,
        seed=args.seed,
        audit=args.audit,
        trace=args.trace,
        progress=progress,
    )
    paths = write_results(doc, out_dir=args.out or None,
                          trajectory_path=args.trajectory or None)
    t = doc["timing"]
    print(f"\n{t['units']} unit(s) in {t['total_wall_s']:.2f}s "
          f"({t['units_per_s']:.2f} units/s, {workers} worker(s))")
    if "optimization" in doc:
        opt = doc["optimization"]
        print(f"macro measure phase: {opt['before']['measure_wall_s']:.2f}s -> "
              f"{opt['after']['measure_wall_s']:.2f}s "
              f"({opt['speedup_measure']:.2f}x); aging "
              f"{opt['before']['age_wall_s']:.2f}s -> "
              f"{opt['after']['age_wall_s']:.2f}s ({opt['speedup_age']:.2f}x)")
    for p in paths:
        print(f"wrote {p}")
    if args.baseline:
        import json

        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        problems = compare_to_baseline(doc, baseline, rtol=args.rtol)
        if problems:
            print(f"\nbaseline regression check FAILED "
                  f"({len(problems)} metric(s) moved, rtol={args.rtol:g}):")
            for p in problems[:40]:
                print(f"  {p}")
            if len(problems) > 40:
                print(f"  ... and {len(problems) - 40} more")
            return 1
        print(f"\nbaseline regression check OK (rtol={args.rtol:g}) "
              f"vs {args.baseline}")
        slow = perf_regression(doc, baseline)
        if slow:
            print("\nperf regression gate FAILED (CP throughput dropped):")
            for p in slow:
                print(f"  {p}")
            return 1
        print("perf regression gate OK (macro cps_per_s within 10%)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile the macro benchmark and report wall-clock hotspots next
    to the modeled per-phase CPU decomposition."""
    import cProfile
    import io
    import os
    import pstats

    from repro.bench.harness import (
        RESULTS_DIR,
        build_aged_ssd_sim,
        measure_random_overwrite,
    )

    n_cps = 15 if args.quick else 40
    prof = cProfile.Profile()
    t0 = time.perf_counter()
    prof.enable()
    sim = build_aged_ssd_sim(
        blocks_per_disk=65_536 if args.quick else 131_072,
        churn_factor=1.0 if args.quick else 2.0,
    )
    t1 = time.perf_counter()
    result = measure_random_overwrite(sim, "profile", n_cps=n_cps)
    t2 = time.perf_counter()
    prof.disable()

    os.makedirs(RESULTS_DIR, exist_ok=True)
    dump = os.path.join(RESULTS_DIR, "profile.prof")
    prof.dump_stats(dump)

    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    print(buf.getvalue().rstrip())

    print(f"\naging {t1 - t0:.2f}s, measurement {t2 - t1:.2f}s "
          f"({n_cps / (t2 - t1):.1f} CPs/s under profiler)")
    print(f"cpu_us_per_op {result.cpu_us_per_op:.3f}, "
          f"capacity {result.capacity_ops:,.0f} ops/s")

    phases = sim.engine.metrics.query("cpu_phase_us", model=sim.engine.cpu_model)
    total = sum(phases.values()) or 1.0
    print("\nmodeled CPU by pipeline phase (measurement sweep):")
    for name, us in sorted(phases.items(), key=lambda kv: -kv[1]):
        print(f"  {name:20s} {us / 1e6:9.3f} s-CPU  {us / total:7.2%}")
    print(f"\nprofile dump: {dump} (open with pstats or snakeviz)")
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    """Multi-tenant traffic engine: per-tenant QoS and tail latency."""
    from repro.bench.harness import fmt_table
    from repro.traffic import run_traffic

    t0 = time.perf_counter()
    if args.chaos:
        from repro.faults import PHASES, run_chaos_under_load

        print(f"traffic chaos-under-load: scenario={args.scenario}, "
              f"{args.tenants} tenant(s), seed={args.seed}")
        metrics, engine = run_chaos_under_load(
            scenario=args.scenario, n_tenants=args.tenants, seed=args.seed,
        )
        rows = [
            [phase]
            + [metrics.phase_p99_ms[phase][t.name] for t in engine.tenants]
            for phase in PHASES
        ]
        print("\n" + fmt_table(
            ["phase"] + [t.name for t in engine.tenants],
            rows,
            title="per-tenant p99 latency (ms) by fault phase",
        ))
        print(f"\n{metrics.cps_completed} CPs, "
              f"{metrics.failed_allocations} failed allocations, "
              f"{metrics.disk_failures} disk failure(s), "
              f"{metrics.reconstruction_reads} reconstruction reads, "
              f"rebuild {metrics.rebuild_us / 1e3:.1f} ms "
              f"[{time.perf_counter() - t0:.1f}s]")
        return 0 if metrics.failed_allocations == 0 else 1

    print(f"traffic scenario: {args.scenario}, {args.tenants} tenant(s), "
          f"seed={args.seed} ({'quick' if args.quick else 'full'})")
    run = run_traffic(
        args.scenario, n_tenants=args.tenants, seed=args.seed, quick=args.quick,
    )
    result = run.result
    rows = []
    for name in sorted(result.tenants):
        t = result.tenants[name]
        qos = []
        if t.rejected:
            qos.append(f"{t.rejected} shed")
        rows.append([
            t.name, t.volume, t.offered_ops_s, t.achieved_ops_s,
            t.p50_ms, t.p95_ms, t.p99_ms,
            t.mean_queue_depth, ", ".join(qos) or "-",
        ])
    print("\n" + fmt_table(
        ["tenant", "volume", "offered/s", "achieved/s",
         "p50 ms", "p95 ms", "p99 ms", "mean qd", "qos"],
        rows,
        title=f"per-tenant results ({result.cps} CPs, "
              f"{result.horizon_s:.2f}s simulated)",
    ))
    print(f"\ncalibrated capacity {run.calibration.capacity_ops:,.0f} ops/s, "
          f"run-implied capacity {result.capacity_ops:,.0f} ops/s, "
          f"total {result.total_ops} ops "
          f"[{time.perf_counter() - t0:.1f}s]")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace a traffic scenario: Chrome trace_event JSON plus a per-CP
    span tree reconciled exactly against the run's CPStats records."""
    import os

    from repro import obs
    from repro.bench.harness import RESULTS_DIR
    from repro.traffic import run_traffic

    # Accept underscores for convenience (noisy_neighbor == noisy-neighbor).
    scenario = args.scenario.replace("_", "-")
    print(f"trace: scenario={scenario}, {args.tenants or 'default'} tenant(s), "
          f"seed={args.seed} ({'quick' if args.quick else 'full'})")
    t0 = time.perf_counter()
    tracer = obs.install()
    try:
        run = run_traffic(
            scenario, n_tenants=args.tenants, seed=args.seed, quick=args.quick
        )
    finally:
        obs.uninstall()
    records = tracer.records()

    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = args.out or os.path.join(RESULTS_DIR, f"trace_{scenario}.json")
    with open(out, "w", encoding="utf-8") as f:
        f.write(obs.export.to_chrome(records))
        f.write("\n")
    paths = [out]
    if args.jsonl:
        jsonl_path = os.path.splitext(out)[0] + ".jsonl"
        with open(jsonl_path, "w", encoding="utf-8") as f:
            f.write(obs.export.to_jsonl(records))
        paths.append(jsonl_path)

    if args.tree:
        intact = sorted(obs.report.complete_cps(records))
        show = intact[-args.tree:]
        lines: list[str] = []
        for cp_index in show:
            lines.extend(obs.report.span_tree_lines(records, cp=cp_index))
        print("\n".join(lines))

    problems = obs.report.reconcile(records, run.sim.metrics.cps)
    n_cps = len(obs.report.complete_cps(records))
    dt = time.perf_counter() - t0
    for p in paths:
        print(f"wrote {p}")
    print(f"{len(records)} trace record(s), {tracer.dropped} dropped, "
          f"{n_cps} CP(s) reconciled against CPStats [{dt:.1f}s]")
    if problems:
        print(f"trace reconciliation FAILED ({len(problems)} mismatch(es)):")
        for p in problems[:20]:
            print(f"  {p}")
        return 1
    print("trace reconciliation OK (traced block counts == counted)")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.bench.experiments import fig6_tables, run_fig6

    results = run_fig6(quick=args.quick)
    for table in fig6_tables(results):
        print("\n" + table)
    both = results["both caches"]
    neither = results["neither (baseline)"]
    print(f"\nPeak-throughput gain, both caches vs neither: "
          f"{both.capacity_ops / neither.capacity_ops - 1:+.1%}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.bench.experiments import fig7_tables, run_fig7

    res = run_fig7(quick=args.quick)
    for table in fig7_tables(res):
        print("\n" + table)
    aged, fresh = res.aged(), res.fresh()
    print(f"\nfresh groups receive "
          f"{res.blocks[fresh].mean() / res.blocks[aged].mean():.2f}x the blocks "
          f"of aged groups")
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.bench.experiments import fig8_tables, run_fig8

    results = run_fig8(quick=args.quick)
    for table in fig8_tables(results):
        print("\n" + table)
    small = results["HDD-sized AA (4k stripes)"]
    large = results["Large AA (2 erase units)"]
    print(f"\nWA ratio small/large: "
          f"{small.write_amplification / large.write_amplification:.2f}x "
          f"(paper: ~2x)")
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.bench.experiments import fig9_tables, run_fig9

    results = run_fig9(quick=args.quick)
    for table in fig9_tables(results):
        print("\n" + table)
    small = results["HDD-sized AA (4k stripes)"]
    aligned = results["SMR AA (zone + AZCS aligned)"]
    print(f"\naligned-AA drive-throughput gain: "
          f"{aligned['drive_mbps'] / small['drive_mbps'] - 1:+.1%} (paper: +7%)")
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from repro.bench.experiments import fig10_tables, run_fig10

    size_rows, _s, count_rows, _c = run_fig10(quick=args.quick)
    for table in fig10_tables(size_rows, count_rows):
        print("\n" + table)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for name, fn in (
        ("fig6", _cmd_fig6),
        ("fig7", _cmd_fig7),
        ("fig8", _cmd_fig8),
        ("fig9", _cmd_fig9),
        ("fig10", _cmd_fig10),
    ):
        t0 = time.perf_counter()
        print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
        fn(args)
        print(f"\n[{name}: {time.perf_counter() - t0:.1f}s]")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Chaos runner: disk failure mid-workload + corrupted TopAA page +
    silent bitmap bit-flips, recovered end-to-end."""
    from repro.faults import default_scenario, run_chaos

    sc = default_scenario(seed=args.seed, quick=args.quick)
    print(f"chaos scenario: seed={sc.seed}, {sc.n_cps} CPs x {sc.ops_per_cp} ops, "
          f"{len(sc.faults)} scheduled faults")
    for f in sc.faults:
        when = "pre-mount" if f.at_cp <= 0 else f"cp {f.at_cp}"
        print(f"  [{when:>9s}] {f.kind:14s} -> {f.target}"
              + (f" x{f.count}" if f.count != 1 else "")
              + (f" (disk {f.arg})" if f.arg is not None else ""))
    t0 = time.perf_counter()
    metrics, sim = run_chaos(sc)
    dt = time.perf_counter() - t0

    print(f"\nmount: {len(metrics.mount_fallbacks)} fallback(s)"
          + (f" {metrics.mount_fallbacks}" if metrics.mount_fallbacks else "")
          + (f", {metrics.transient_retries} transient retries"
             if metrics.transient_retries else ""))
    print(f"scrub: detected {metrics.findings_detected or 'nothing'}, "
          f"repaired {metrics.findings_repaired or 'nothing'}")
    if metrics.escalations:
        print(f"escalations (scoped Iron repair): {', '.join(metrics.escalations)}")
    print(f"degraded RAID: {metrics.disk_failures} disk failure(s), "
          f"{metrics.reconstruction_reads} reconstruction reads, "
          f"{metrics.degraded_stripes} degraded stripes, "
          f"{metrics.disks_replaced} rebuild(s) "
          f"({metrics.blocks_reconstructed} blocks, {metrics.rebuild_us / 1e3:.1f} ms)")
    print(f"degraded allocation: {metrics.degraded_cps} CP(s) on the bitmap walk, "
          f"{metrics.degraded_selects} AA selects, "
          f"{metrics.walk_bits_scanned} bits scanned, "
          f"{metrics.rebuild_blocks_read} metafile blocks read rebuilding caches")
    print(f"\n{metrics.cps_completed}/{sc.n_cps} CPs completed, "
          f"{metrics.failed_allocations} failed allocations, "
          f"final scrub {'CLEAN' if metrics.final_clean else 'DIRTY'} "
          f"[{dt:.1f}s]")
    ok = (metrics.failed_allocations == 0 and metrics.final_clean
          and metrics.cps_completed == sc.n_cps)
    print("recovery " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_crash(args: argparse.Namespace) -> int:
    """Systematic crash-consistency sweep: crash at every CP span edge,
    recover through the real mount path, audit every invariant, and
    verify byte-equality with the last committed CP's metadata image."""
    from repro.crash import (
        explore_aging,
        explore_noisy_neighbor,
        run_crash_under_load,
    )

    cps = 1 if args.quick else args.cps
    t0 = time.perf_counter()
    matrices = []
    if args.workload in ("aging", "both"):
        matrices.append(explore_aging(cps=cps, seed=args.seed))
    if args.workload in ("noisy-neighbor", "both"):
        matrices.append(explore_noisy_neighbor(cps=cps, seed=args.seed))

    failed = False
    for m in matrices:
        torn = m.torn_write_cases
        post = sum(1 for o in m.outcomes if o.post_commit)
        print(f"{m.workload}: {m.crash_points} crash points across "
              f"{m.cps_swept} CP(s), {torn} with torn writes, "
              f"{post} post-commit .. "
              + ("OK" if m.ok else f"{len(m.violations)} VIOLATION(S)"))
        if args.verbose or not m.ok:
            for o in (m.outcomes if args.verbose else m.violations):
                print(f"  {o.row()}")
                for v in o.violations:
                    print(f"      {v}")
        if m.outcomes:
            worst = max(o.recovery_us for o in m.outcomes)
            mean = sum(o.recovery_us for o in m.outcomes) / len(m.outcomes)
            print(f"  recovery cost: mean {mean / 1e3:.2f} ms, "
                  f"worst {worst / 1e3:.2f} ms (modeled metafile reads)")
        print(f"  matrix digest: {m.digest()}")
        failed |= not m.ok

    if not args.no_load:
        rep = run_crash_under_load(
            steps=2 * cps, crash_every=2, seed=args.seed
        )
        print(f"under load ({rep.scenario}): {len(rep.crashes)} mid-CP "
              f"crash(es) in {rep.steps} steps .. "
              + ("OK" if rep.ok else "FAILED"))
        for c in rep.crashes:
            if args.verbose or not c.ok:
                print(f"  {c.row()}")
                for v in c.violations:
                    print(f"      {v}")
        print(f"  report digest: {rep.digest()}")
        failed |= not rep.ok

    dt = time.perf_counter() - t0
    print(f"crash consistency "
          + ("FAILED" if failed else "PASSED") + f" [{dt:.1f}s]")
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """simlint: AST static analysis with the repo's determinism,
    layering, unit, and error-hygiene rules (see repro.analysis.rules).
    With --deep, additionally run the whole-program flow passes
    (repro.analysis.flow): interprocedural determinism taint, unit
    typestate, commit-path effects, and seed threading."""
    from pathlib import Path

    from repro.analysis import format_findings, lint_paths

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    findings = lint_paths(paths)
    print(format_findings(findings))
    if not args.deep:
        return 1 if findings else 0

    from repro.analysis.flow import (
        deep_lint,
        default_baseline_path,
        format_deep_findings,
        load_baseline,
        report_to_json,
        split_findings,
        write_baseline,
    )

    t0 = time.perf_counter()
    report = deep_lint(paths, cache_path=args.cache or None)
    diff = None
    baseline_path = None
    if args.baseline is not None or args.update_baseline:
        baseline_path = args.baseline or str(default_baseline_path())
        previous = load_baseline(baseline_path)
        diff = split_findings(list(report.findings), previous)
        if args.update_baseline:
            write_baseline(baseline_path, list(report.findings), previous)
            print(f"wrote baseline {baseline_path} "
                  f"({len(report.findings)} waiver(s), "
                  f"{len(diff.stale)} pruned)")
            diff = split_findings(list(report.findings),
                                  load_baseline(baseline_path))
    print(format_deep_findings(report, diff))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(report_to_json(report, diff))
        print(f"wrote {args.json}")
    print(f"deep lint: [{time.perf_counter() - t0:.1f}s]"
          + (f" (baseline {baseline_path})" if baseline_path else ""))
    deep_failed = bool(report.findings) if diff is None else not diff.ok
    return 1 if (findings or deep_failed) else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Arm the cross-layer invariant auditor and sweep CPs through the
    interesting regimes: snapshot churn, budgeted delayed frees, and
    the full chaos scenario (degraded RAID, corrupt TopAA, bit flips)."""
    from repro import RandomOverwriteWorkload, WaflSim
    from repro.analysis import arm_global, audit_sim, disarm_global
    from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
    from repro.common.errors import AuditError
    from repro.faults import default_scenario, run_chaos
    from repro.workloads import fill_volumes

    n = 4 if args.quick else 8
    t0 = time.perf_counter()
    arm_global()
    try:
        sim = WaflSim.build(
            AggregateSpec(
                tiers=(TierSpec(label="ssd", media="ssd", ndata=4,
                                blocks_per_disk=16384),),
                volumes=(VolumeDecl("lun0", logical_blocks=24576),
                         VolumeDecl("lun1", logical_blocks=12288)),
            ),
            seed=11,
        )
        fill_volumes(sim)
        wl = RandomOverwriteWorkload(sim, ops_per_cp=1024, seed=5)
        sim.run(wl, n)
        sim.create_snapshot("lun0", "audit-snap")
        sim.set_free_budget(4)
        sim.run(wl, n)
        sim.delete_snapshot("lun0", "audit-snap")
        sim.set_free_budget(None)
        sim.run(wl, n)
        healthy = sim.engine.auditor.cps_audited
        print(f"healthy sweep: {healthy} CPs audited "
              f"(snapshot churn + delayed-free budget) .. OK")

        sc = default_scenario(seed=args.seed, quick=args.quick)
        metrics, chaos_sim = run_chaos(sc)
        chaos = chaos_sim.engine.auditor.cps_audited
        print(f"chaos sweep: {chaos} CPs audited under seed {sc.seed} "
              f"({metrics.disk_failures} disk failure(s), "
              f"{metrics.degraded_cps} degraded CP(s)) .. OK")

        final = audit_sim(sim)
        final_chaos = audit_sim(chaos_sim)
        final.raise_if_failed()
        final_chaos.raise_if_failed()
        print(f"final structural audit: "
              f"{final.checks_run + final_chaos.checks_run} checks .. OK")
    except AuditError as exc:
        print(f"\naudit FAILED:\n{exc}")
        return 1
    finally:
        disarm_global()
    print(f"audit PASSED [{time.perf_counter() - t0:.1f}s]")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Fleet-scale cluster: filter/weigher placement, online rebalance,
    and the aggregate-kill chaos drill."""
    from repro.bench.harness import fmt_table

    t0 = time.perf_counter()
    if args.action == "place":
        from repro.cluster import (Cluster, FilterScheduler, RandomPlacer,
                                   make_shard_specs, noisy_fleet_requests,
                                   derive_seed)

        n_shards = args.shards if args.shards else (8 if args.quick else 64)
        per_shard = args.tenants if args.tenants else (3 if args.quick else 16)
        n_volumes = n_shards * per_shard
        print(f"cluster place: {n_shards} shards, {n_volumes} tenant volumes, "
              f"seed={args.seed}")
        specs = make_shard_specs(n_shards, seed=args.seed)
        requests = noisy_fleet_requests(
            n_volumes, seed=derive_seed(args.seed, "fleet"))
        fleet = Cluster(specs, scheduler=FilterScheduler(),
                        workers=args.workers)
        scheduled = fleet.schedule(requests)
        control = Cluster(
            specs,
            scheduler=RandomPlacer(seed=derive_seed(args.seed, "random")),
            workers=args.workers,
        )
        random_result = control.schedule(requests, rounds=1)
        rows = []
        for sid in sorted(scheduled.shard_stats):
            st = scheduled.shard_stats[sid]
            rows.append([sid, st["n_volumes"], f"{st['committed_fraction']:.2f}",
                         st["free_blocks"], f"{st['aa_free_fraction']:.3f}",
                         f"{st['worst_p99_ms']:.2f}"])
        print("\n" + fmt_table(
            ["shard", "vols", "committed", "free blk", "aa free", "worst p99 ms"],
            rows, title="filter/weigher placement (final epoch)"))
        victims = [r.name for r in requests if r.profile == "victim"]
        sched_p99 = [scheduled.tenant_p99_ms[v] for v in victims
                     if v in scheduled.tenant_p99_ms]
        rand_p99 = [random_result.tenant_p99_ms[v] for v in victims
                    if v in random_result.tenant_p99_ms]
        mean_s = sum(sched_p99) / len(sched_p99) if sched_p99 else 0.0
        mean_r = sum(rand_p99) / len(rand_p99) if rand_p99 else 0.0
        print(f"\nvictim mean p99: scheduled {mean_s:.3f} ms vs "
              f"random {mean_r:.3f} ms")
        print(f"fleet digest {scheduled.digest[:16]} "
              f"[{time.perf_counter() - t0:.1f}s]")
        return 0 if mean_s <= mean_r else 1

    if args.action == "rebalance":
        from repro.cluster import run_rebalance

        n_shards = args.shards if args.shards else 4
        per_shard = args.tenants if args.tenants else 3
        print(f"cluster rebalance: {n_shards} shards, "
              f"{n_shards * per_shard} tenants, seed={args.seed}")
        out = run_rebalance(n_shards=n_shards, tenants_per_shard=per_shard,
                            seed=args.seed)
        mig = out["migration"]
        print(f"\nmigrated {mig['volume']}: shard {mig['source_shard']} -> "
              f"{mig['target_shard']}, {mig['blocks_copied']} blocks copied, "
              f"{mig['blocks_freed']} freed, {mig['ops_drained']} ops "
              f"drained/replayed")
        print(f"audit: {mig['audit_checks']} checks clean, "
              f"{mig['iron_findings']} Iron findings")
        rows = [[sid, f"{out['worst_p99_before'][sid]:.2f}",
                 f"{out['worst_p99_after'][sid]:.2f}"]
                for sid in sorted(out["worst_p99_before"])]
        print("\n" + fmt_table(["shard", "p99 before", "p99 after"], rows,
                               title="worst tenant p99 (ms) per shard"))
        print(f"[{time.perf_counter() - t0:.1f}s]")
        return 0 if (mig["blocks_copied"] == mig["blocks_freed"]
                     and mig["iron_findings"] == 0) else 1

    # chaos
    from repro.cluster import run_cluster_chaos

    n_shards = args.shards if args.shards else 6
    per_shard = args.tenants if args.tenants else 2
    print(f"cluster chaos: {n_shards} shards, {n_shards * per_shard} tenants, "
          f"seed={args.seed}")
    report = run_cluster_chaos(n_shards=n_shards, tenants_per_shard=per_shard,
                               seed=args.seed)
    d = report.as_dict()
    print(f"\nkilled shard {d['killed_shard']}; evacuated "
          f"{len(d['evacuated'])} volume(s): {d['evacuated']}")
    if d["stranded"]:
        print(f"STRANDED (no surviving shard fits): {d['stranded']}")
    rows = [[v, f"{d['victim_p99_ms'][v]:.3f}", f"{d['victim_bound_ms'][v]:.3f}"]
            for v in sorted(d["victim_p99_ms"])]
    print("\n" + fmt_table(["victim", "p99 ms", "bound ms"], rows,
                           title="victim tails after the kill"))
    print(f"\naudit: {d['audit_checks']} checks clean, "
          f"{d['iron_findings']} Iron findings; victims bounded: "
          f"{d['victims_bounded']} [{time.perf_counter() - t0:.1f}s]")
    ok = (d["victims_bounded"] and d["iron_findings"] == 0
          and not d["stranded"])
    return 0 if ok else 1


def _cmd_tier(args: argparse.Namespace) -> int:
    """Heterogeneous multi-tier aggregate demo: chooser placement on a
    mixed SSD + HDD + SMR aggregate, then the background migration pass
    correcting a deliberate misplacement (block conservation, auditor,
    and Iron asserted inside the bench)."""
    from repro.bench.harness import fmt_table
    from repro.tiering import run_tier_bench

    t0 = time.perf_counter()
    print(f"tier demo: mixed SSD+HDD+SMR aggregate, seed={args.seed}"
          f"{' (quick)' if args.quick else ''}")
    m = run_tier_bench(quick=args.quick, seed=args.seed)["metrics"]

    print("\nchooser placement: " + ", ".join(
        f"{vol} -> {label}" for vol, label in sorted(m["placements"].items())))
    rows = []
    for label in m["tiers"]:
        usage = m["tier_usage"][label]
        rows.append([label, usage["nblocks"], usage["used"], usage["free"],
                     m["blocks_by_tier"][label], m["freed_by_tier"][label]])
    print("\n" + fmt_table(
        ["tier", "blocks", "used", "free", "cp writes", "cp frees"],
        rows, title="per-tier aggregate state"))
    rows = [[r["volume"], r["target"], r["copied"], r["freed"], r["used"]]
            for r in m["migrations"]]
    print("\n" + fmt_table(
        ["volume", "to tier", "copied", "freed", "on target"],
        rows, title="tier migrations (misplace, then background correction)"))
    print(f"\naudit clean: {m['audit_ok']}; Iron clean: {m['iron_clean']}; "
          f"digest {m['digest'][:16]} [{time.perf_counter() - t0:.1f}s]")
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    # Defer to the shipped example (kept as the single source of truth).
    import runpy
    from pathlib import Path

    candidate = Path(__file__).resolve().parents[2].parent / "examples" / "quickstart.py"
    if candidate.exists():
        runpy.run_path(str(candidate), run_name="__main__")
        return 0
    # Installed without the examples directory: run a minimal inline demo.
    from repro import RandomOverwriteWorkload, WaflSim
    from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
    from repro.workloads import fill_volumes

    sim = WaflSim.build(
        AggregateSpec(
            tiers=(TierSpec(label="ssd", media="ssd", ndata=4,
                            blocks_per_disk=65536),),
            volumes=(VolumeDecl("demo", logical_blocks=60_000),),
        ),
        seed=7,
    )
    fill_volumes(sim)
    sim.run(RandomOverwriteWorkload(sim, seed=1), 10)
    for key, val in sim.metrics.summary().items():
        print(f"  {key:24s} = {val:.3f}")
    sim.verify_consistency()
    print("consistency verified")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the WAFL free-block-search paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, doc in (
        ("info", _cmd_info, "print version and modelling constants"),
        ("fig6", _cmd_fig6, "AA cache benefit (section 4.1)"),
        ("fig7", _cmd_fig7, "imbalanced RAID-group aging (section 4.2)"),
        ("fig8", _cmd_fig8, "SSD AA sizing (section 4.3)"),
        ("fig9", _cmd_fig9, "SMR AA sizing with AZCS (section 4.3)"),
        ("fig10", _cmd_fig10, "TopAA mount time (section 4.4)"),
        ("all", _cmd_all, "run every figure"),
        ("faults", _cmd_faults, "chaos scenario: inject faults, recover, report"),
        ("quickstart", _cmd_quickstart, "run the quickstart demo"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("--quick", action="store_true",
                       help="smaller configurations for interactive use")
        if name == "faults":
            p.add_argument("--seed", type=int, default=1234,
                           help="scenario seed (same seed => identical recovery)")
        p.set_defaults(fn=fn)
    p = sub.add_parser(
        "bench",
        help="parallel benchmark sweep -> benchmarks/results/*.json + BENCH_PR3.json",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller configurations for interactive use")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size (1 = serial reference; 0 = auto)")
    p.add_argument("--experiments", nargs="*", metavar="EXP",
                   help="subset to run (fig6 fig7 fig8 fig9 fig10 macro "
                        "traffic cluster tier)")
    p.add_argument("--seed", type=int, default=None,
                   help="base seed (default: each figure's canonical seed)")
    p.add_argument("--audit", action="store_true",
                   help="arm the CP-time invariant auditor inside workers")
    p.add_argument("--trace", action="store_true",
                   help="run units with the structured tracer installed "
                        "(trace-smoke: metrics must not move)")
    p.add_argument("--baseline", metavar="PATH",
                   help="trajectory JSON to diff deterministic metrics against")
    p.add_argument("--rtol", type=float, default=1e-9,
                   help="relative tolerance for --baseline (default bit-exact)")
    p.add_argument("--out", metavar="DIR",
                   help="per-experiment JSON directory (default benchmarks/results)")
    p.add_argument("--trajectory", metavar="PATH",
                   help="trajectory summary path (default <repo>/BENCH_PR3.json)")
    p.set_defaults(fn=_cmd_bench)
    p = sub.add_parser(
        "traffic",
        help="multi-tenant traffic engine: QoS, noisy neighbors, tail latency",
    )
    p.add_argument("--scenario", default="noisy-neighbor",
                   choices=["uniform", "noisy-neighbor", "throttled"],
                   help="tenant population to run (default noisy-neighbor)")
    p.add_argument("--tenants", type=int, default=4,
                   help="number of tenants (one FlexVol each)")
    p.add_argument("--seed", type=int, default=7,
                   help="traffic seed (same seed => byte-identical run)")
    p.add_argument("--quick", action="store_true",
                   help="smaller configuration for interactive use")
    p.add_argument("--chaos", action="store_true",
                   help="fail and rebuild a disk mid-run; report per-phase p99")
    p.set_defaults(fn=_cmd_traffic)
    p = sub.add_parser(
        "trace",
        help="trace a traffic scenario -> Chrome trace JSON + span tree "
             "reconciled against CPStats",
    )
    p.add_argument("--scenario", default="noisy-neighbor",
                   help="scenario to trace (uniform, noisy-neighbor, throttled; "
                        "underscores accepted)")
    p.add_argument("--tenants", type=int, default=None,
                   help="number of tenants (default from SimConfig)")
    p.add_argument("--seed", type=int, default=7,
                   help="traffic seed (same seed => byte-identical trace)")
    p.add_argument("--quick", action="store_true",
                   help="smaller configuration for interactive use")
    p.add_argument("--out", metavar="PATH",
                   help="Chrome trace path (default benchmarks/results/"
                        "trace_<scenario>.json)")
    p.add_argument("--jsonl", action="store_true",
                   help="also write the raw records as JSON-lines")
    p.add_argument("--tree", type=int, default=2, metavar="N",
                   help="print the span tree of the last N CPs (0 = none)")
    p.set_defaults(fn=_cmd_trace)
    p = sub.add_parser("profile", help="cProfile the macro benchmark + modeled "
                                       "per-phase CPU breakdown")
    p.add_argument("--quick", action="store_true",
                   help="smaller configuration for interactive use")
    p.add_argument("--top", type=int, default=25, help="rows of pstats output")
    p.add_argument("--sort", default="cumulative",
                   choices=["cumulative", "tottime", "calls"],
                   help="pstats sort key")
    p.set_defaults(fn=_cmd_profile)
    p = sub.add_parser(
        "crash",
        help="systematic mid-CP crash injection: sweep every span edge, "
             "recover, audit, verify byte-equality with the committed CP",
    )
    p.add_argument("--quick", action="store_true",
                   help="one CP per workload instead of --cps")
    p.add_argument("--cps", type=int, default=3,
                   help="consecutive CPs to sweep per workload (default 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (same seed => identical matrix digest)")
    p.add_argument("--workload", default="both",
                   choices=["aging", "noisy-neighbor", "both"],
                   help="which sweeps to run (default both)")
    p.add_argument("--no-load", action="store_true",
                   help="skip the crash-under-live-traffic integration")
    p.add_argument("--verbose", action="store_true",
                   help="print every crash point, not just violations")
    p.set_defaults(fn=_cmd_crash)
    p = sub.add_parser("lint", help="simlint: AST rules (determinism, layering, units); "
                                    "--deep adds whole-program flow passes")
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: the installed repro package)")
    p.add_argument("--deep", action="store_true",
                   help="run the interprocedural flow passes (F801-F804) "
                        "over the whole tree")
    p.add_argument("--baseline", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="ratchet against a findings baseline (default: the "
                        "checked-in src/repro/analysis/flow/baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline: keep justifications, prune "
                        "stale waivers, add new findings as unreviewed")
    p.add_argument("--json", metavar="PATH",
                   help="write deep findings as deterministic JSON")
    p.add_argument("--cache", metavar="PATH",
                   default=".flowcache.json",
                   help="call-graph extraction cache (content-hashed; "
                        "default .flowcache.json, '' disables)")
    p.set_defaults(fn=_cmd_lint)
    p = sub.add_parser(
        "cluster",
        help="fleet-scale cluster: filter/weigher placement, online "
             "rebalance, aggregate-kill chaos",
    )
    p.add_argument("action", choices=["place", "rebalance", "chaos"],
                   help="place: schedule a noisy-neighbor fleet vs random; "
                        "rebalance: migrate a hot tenant under live traffic; "
                        "chaos: kill an aggregate and evacuate its tenants")
    p.add_argument("--shards", type=int, default=None,
                   help="aggregates in the fleet (default per action)")
    p.add_argument("--tenants", type=int, default=None,
                   help="tenant volumes per shard (default per action)")
    p.add_argument("--seed", type=int, default=77,
                   help="fleet seed (same seed => byte-identical digests)")
    p.add_argument("--workers", type=int, default=None,
                   help="shard pool size for place (default: in-process)")
    p.add_argument("--quick", action="store_true",
                   help="smaller fleet for interactive use")
    p.set_defaults(fn=_cmd_cluster)
    p = sub.add_parser(
        "tier",
        help="heterogeneous multi-tier aggregate: chooser placement plus "
             "background tier migration with block conservation",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller aggregate for interactive use")
    p.add_argument("--seed", type=int, default=55,
                   help="demo seed (same seed => byte-identical digest)")
    p.set_defaults(fn=_cmd_tier)
    p = sub.add_parser("audit", help="CP-time invariant audit incl. chaos scenario")
    p.add_argument("--quick", action="store_true",
                   help="smaller configurations for interactive use")
    p.add_argument("--seed", type=int, default=1234,
                   help="chaos scenario seed")
    p.set_defaults(fn=_cmd_audit)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
