"""Scripted chaos scenarios: inject, run CPs, scrub, repair, report.

A :class:`ChaosScenario` is a seeded script of faults against the CP
clock.  :func:`run_chaos` executes it end-to-end:

1. build (or take) a simulator, age it, and attach the injector;
2. export the TopAA image, apply pre-mount corruption, and mount —
   corrupt pages fall back per-filesystem to the bitmap walk;
3. run CPs, applying scheduled faults at each boundary: disk
   failures/replacements, silent bitmap bit-flips, armed read faults;
4. after any bitmap damage, scrub (``iron.scan``), escalate the
   damaged instances into degraded allocation with a scoped repair,
   keep serving writes from the bitmap walk, then rebuild caches;
5. final scrub + full consistency verification.

The run is deterministic: every random draw flows from the scenario
seed, so two runs with the same seed produce identical
:class:`RecoveryMetrics` — which is how the recovery path itself is
regression-tested.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..common.config import AggregateSpec, TierSpec, VolumeDecl
from ..common.errors import AllocationError, OutOfSpaceError
from ..core.policies import BitmapWalkSource
from ..fs.aggregate import RAIDStore
from ..fs.filesystem import WaflSim
from ..fs.iron import scan
from ..fs.mount import export_topaa, simulate_mount
from ..workloads import RandomOverwriteWorkload, fill_volumes
from .injector import FaultInjector, FaultKind, ScheduledFault, corrupt_bytes, flip_bitmap_bits
from .recovery import attach_everywhere, degraded_instances, escalate, exit_degraded, instances

__all__ = ["ChaosScenario", "RecoveryMetrics", "default_scenario", "run_chaos"]


@dataclass
class ChaosScenario:
    """A deterministic fault script for one chaos run."""

    seed: int = 1234
    #: Consistency points to run after the (possibly degraded) mount.
    n_cps: int = 12
    ops_per_cp: int = 2048
    #: CPs to keep serving from the bitmap walk after an escalation
    #: before caches are rebuilt (models the rebuild window).
    degraded_window: int = 2
    #: The script (fires before the CP whose index matches ``at_cp``;
    #: ``at_cp <= 0`` fires before mount).
    faults: list[ScheduledFault] = field(default_factory=list)
    #: CPs of aging workload before the TopAA export/mount.
    warmup_cps: int = 6


@dataclass
class RecoveryMetrics:
    """Everything a chaos run measures; equal across same-seed runs."""

    cps_completed: int = 0
    #: Allocation requests that failed — the acceptance bar is zero.
    failed_allocations: int = 0
    #: CPs served while at least one file system was on the bitmap walk.
    degraded_cps: int = 0
    #: AAs handed out by bitmap-walk sources while degraded.
    degraded_selects: int = 0
    #: Bitmap bits scanned finding them (the degradation cost).
    walk_bits_scanned: int = 0
    #: Degraded-RAID accounting (charged into the latency model too).
    reconstruction_reads: int = 0
    degraded_stripes: int = 0
    blocks_reconstructed: int = 0
    disk_failures: int = 0
    disks_replaced: int = 0
    rebuild_us: float = 0.0
    #: Mount outcome: per-filesystem fallback reasons and retry count.
    mount_fallbacks: dict[str, str] = field(default_factory=dict)
    mount_repairs: list[str] = field(default_factory=list)
    transient_retries: int = 0
    #: Scrub outcome: findings detected (by kind) and repaired (by kind).
    findings_detected: dict[str, int] = field(default_factory=dict)
    findings_repaired: dict[str, int] = field(default_factory=dict)
    #: Instances escalated to scoped Iron repair, in order.
    escalations: list[str] = field(default_factory=list)
    #: Metafile blocks read rebuilding caches after degraded windows.
    rebuild_blocks_read: int = 0
    #: Final scrub found nothing.
    final_clean: bool = False

    def as_dict(self) -> dict:
        return asdict(self)


def default_scenario(seed: int = 1234, *, quick: bool = False) -> ChaosScenario:
    """The acceptance scenario: a disk failure mid-workload, one
    corrupted TopAA page, and silent bitmap bit-flips on a volume and
    a RAID group — all recovered in one run."""
    n_cps = 8 if quick else 16
    ops = 1024 if quick else 2048
    sc = ChaosScenario(seed=seed, n_cps=n_cps, ops_per_cp=ops,
                       warmup_cps=3 if quick else 6)
    sc.faults = [
        # Pre-mount: corrupt volB's persisted TopAA page (16 bit flips).
        ScheduledFault(0, "vol:volB", FaultKind.TOPAA_CORRUPT, count=16),
        # Mid-workload: data disk 1 of group 0 dies ...
        ScheduledFault(n_cps // 3, "group:0", FaultKind.DISK_FAIL, arg=1),
        # ... and is replaced (rebuilt from parity) later.
        ScheduledFault((2 * n_cps) // 3, "group:0", FaultKind.DISK_REPLACE, arg=1),
        # Silent corruption: lost frees on volA (leaked), torn bitmap
        # write on group 0 (corrupt).
        ScheduledFault(n_cps // 2, "vol:volA", FaultKind.LOST_WRITE, count=48),
        ScheduledFault(n_cps // 2, "group:0", FaultKind.TORN_WRITE, count=48),
    ]
    return sc


def _default_sim(seed: int) -> WaflSim:
    tier = TierSpec(
        label="ssd", media="ssd", ndata=3, blocks_per_disk=32768,
        stripes_per_aa=2048,
    )
    phys = 3 * 32768
    spec = AggregateSpec(
        tiers=(tier,),
        volumes=(
            VolumeDecl("volA", logical_blocks=phys // 4),
            VolumeDecl("volB", logical_blocks=phys // 8),
        ),
    )
    return WaflSim.build(spec, seed=seed)


def _group_index(target: str) -> int:
    if not target.startswith("group:"):
        raise ValueError(f"disk faults need a group target, got {target!r}")
    return int(target.split(":", 1)[1])


def _merge(into: dict[str, int], findings) -> None:
    for f in findings:
        into[f.kind] = into.get(f.kind, 0) + f.count


def _harvest_walk_stats(sim: WaflSim, metrics: RecoveryMetrics) -> None:
    """Collect bitmap-walk counters before the sources are replaced."""
    for fs in instances(sim).values():
        src = getattr(fs, "source", None)
        if isinstance(src, BitmapWalkSource):
            metrics.degraded_selects += src.selects
            metrics.walk_bits_scanned += src.bits_scanned
            src.selects = 0
            src.bits_scanned = 0


def _apply_fault(
    sim: WaflSim,
    injector: FaultInjector,
    fault: ScheduledFault,
    metrics: RecoveryMetrics,
    damaged: set[str],
) -> None:
    store = sim.store
    kind = fault.kind
    if kind == FaultKind.DISK_FAIL:
        if not isinstance(store, RAIDStore):
            raise ValueError("disk-fail requires a RAID store")
        store.fail_disk(_group_index(fault.target), fault.arg or 0)
        metrics.disk_failures += 1
    elif kind == FaultKind.DISK_REPLACE:
        if not isinstance(store, RAIDStore):
            raise ValueError("disk-replace requires a RAID store")
        g = store.groups[_group_index(fault.target)]
        metrics.rebuild_us += g.replace_disk(fault.arg or 0)
        metrics.disks_replaced += 1
    elif kind in (FaultKind.TORN_WRITE, FaultKind.LOST_WRITE):
        fs = instances(sim).get(fault.target)
        if fs is None:
            raise ValueError(f"unknown fault target {fault.target!r}")
        direction = "set" if kind == FaultKind.LOST_WRITE else "clear"
        flip_bitmap_bits(fs.metafile.bitmap, fault.count, injector.rng, direction)
        damaged.add(fault.target)
    else:
        # Read-path faults are delivered by arming the injector; the
        # stack consumes them on its next read of that target.
        injector.arm(fault.target, kind, fault.count)


def run_chaos(
    scenario: ChaosScenario | None = None,
    sim: WaflSim | None = None,
) -> tuple[RecoveryMetrics, WaflSim]:
    """Execute a chaos scenario end-to-end; returns (metrics, sim)."""
    sc = scenario or default_scenario()
    metrics = RecoveryMetrics()
    if sim is None:
        sim = _default_sim(sc.seed)
        fill_volumes(sim, ops_per_cp=8192)
        if sc.warmup_cps:
            warm = RandomOverwriteWorkload(sim, ops_per_cp=sc.ops_per_cp, seed=sc.seed)
            sim.run(warm, sc.warmup_cps)

    injector = FaultInjector(sc.seed)
    attach_everywhere(sim, injector)
    for f in sc.faults:
        injector.schedule(f.at_cp, f.target, f.kind, f.count, f.arg)

    # ---- mount phase: TopAA export, pre-mount corruption, mount ------
    image = export_topaa(sim)
    damaged: set[str] = set()
    for f in injector.due(0):
        if f.kind == FaultKind.TOPAA_CORRUPT:
            if f.target.startswith("vol:"):
                name = f.target.split(":", 1)[1]
                if name in image.vol_pages:
                    image.vol_pages[name] = corrupt_bytes(
                        image.vol_pages[name], f.count, injector.rng
                    )
            elif f.target.startswith("group:"):
                gi = _group_index(f.target)
                if gi < len(image.group_blocks):
                    image.group_blocks[gi] = corrupt_bytes(
                        image.group_blocks[gi], f.count, injector.rng
                    )
            elif f.target == "store" and image.store_pages is not None:
                image.store_pages = corrupt_bytes(
                    image.store_pages, f.count, injector.rng
                )
        else:
            _apply_fault(sim, injector, f, metrics, damaged)
    mount = simulate_mount(sim, image)
    metrics.mount_fallbacks = dict(mount.fallbacks)
    metrics.mount_repairs = list(mount.repairs)
    metrics.transient_retries += mount.transient_retries

    # ---- CP loop ------------------------------------------------------
    workload = iter(RandomOverwriteWorkload(sim, ops_per_cp=sc.ops_per_cp, seed=sc.seed + 1))
    cp_start = len(sim.metrics.cps)
    exit_at: int | None = None
    for cp in range(1, sc.n_cps + 1):
        for f in injector.due(cp):
            _apply_fault(sim, injector, f, metrics, damaged)
        if damaged:
            # Scrub: detect the silent damage, escalate exactly the
            # damaged instances, repair their bitmaps in place.
            report = scan(sim)
            _merge(metrics.findings_detected, report.findings)
            wheres = sorted(report.by_where())
            repaired = escalate(sim, wheres)
            _merge(metrics.findings_repaired, repaired.findings)
            metrics.escalations.extend(wheres)
            damaged.clear()
            exit_at = cp + sc.degraded_window
        try:
            sim.engine.run_cp(next(workload))
            metrics.cps_completed += 1
        except (AllocationError, OutOfSpaceError):
            metrics.failed_allocations += 1
        if degraded_instances(sim):
            metrics.degraded_cps += 1
            if exit_at is not None and cp >= exit_at:
                _harvest_walk_stats(sim, metrics)
                metrics.rebuild_blocks_read += exit_degraded(sim)
                exit_at = None

    if degraded_instances(sim):
        _harvest_walk_stats(sim, metrics)
        metrics.rebuild_blocks_read += exit_degraded(sim)

    # ---- final accounting --------------------------------------------
    for stats in sim.metrics.cps[cp_start:]:
        metrics.reconstruction_reads += stats.reconstruction_reads
        metrics.degraded_stripes += stats.degraded_stripes
    if isinstance(sim.store, RAIDStore):
        metrics.blocks_reconstructed = sum(
            g.blocks_reconstructed for g in sim.store.groups
        )
    final = scan(sim)
    metrics.final_clean = final.clean
    sim.verify_consistency()
    return metrics, sim
