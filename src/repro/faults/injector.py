"""Seeded, deterministic fault injection.

The injector is a passive oracle the storage stack consults at its
read/write boundaries: file systems and RAID groups ask "does a fault
fire here?" and the injector answers from per-target rates, armed
one-shots, or a scripted schedule.  All randomness flows through one
seeded :class:`numpy.random.Generator`, so a run with the same seed
and the same call order injects — and therefore recovers — identically.

Targets are addressed by the same ``where`` labels Iron uses
("vol:<name>", "group:<i>", "store"), which is what lets detection
escalate into scoped repair (:mod:`repro.faults.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import FaultError
from ..common.rng import make_rng

__all__ = ["FaultKind", "ScheduledFault", "FaultInjector", "corrupt_bytes", "flip_bitmap_bits"]


class FaultKind:
    """String fault kinds (strings, so the fs layer never has to import
    this package — injector consumers duck-type on ``consume``/``roll``)."""

    #: Read fails once but succeeds on retry (loose cable, firmware hiccup).
    TRANSIENT_READ = "transient-read"
    #: Unreadable sectors; RAID reconstructs them within its parity budget.
    LATENT_SECTOR_ERROR = "latent-sector-error"
    #: Damage RAID cannot fix (too many members affected) — Iron's case.
    UNRECONSTRUCTABLE = "unreconstructable"
    #: A write that hit the platter partially: bits flip toward zero
    #: (allocated state lost -> Iron "corrupt" findings).
    TORN_WRITE = "torn-write"
    #: A write acknowledged but never persisted: stale set bits remain
    #: (frees lost -> Iron "leaked" findings).
    LOST_WRITE = "lost-write"
    #: Whole-device failure in a RAID group.
    DISK_FAIL = "disk-fail"
    #: Replace + rebuild a previously failed device.
    DISK_REPLACE = "disk-replace"
    #: Corrupt a persisted TopAA page (checksum mismatch at next mount).
    TOPAA_CORRUPT = "topaa-corrupt"


@dataclass(frozen=True)
class ScheduledFault:
    """One scripted fault: fire ``kind`` at ``target`` before CP ``at_cp``."""

    at_cp: int
    target: str
    kind: str
    #: Blocks/bits/devices affected (kind-dependent).
    count: int = 1
    #: Extra argument (e.g. disk index for DISK_FAIL/DISK_REPLACE).
    arg: int | None = None


class FaultInjector:
    """Deterministic fault oracle for devices, RAID groups, and metafiles.

    Three injection mechanisms compose:

    * **rates** — :meth:`set_rate` gives a per-consultation (or
      per-block, for :meth:`roll`) firing probability;
    * **one-shots** — :meth:`arm` queues N guaranteed firings that
      :meth:`consume`/:meth:`roll` drain first;
    * **schedules** — :meth:`schedule` scripts faults against a CP
      clock; the chaos runner pops them with :meth:`due` and applies
      them to the simulator.

    Every firing is tallied in :attr:`injected` so recovery metrics can
    be compared across runs (same seed => identical tallies).
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self.rng = make_rng(seed)
        self._rates: dict[tuple[str, str], float] = {}
        self._armed: dict[tuple[str, str], int] = {}
        self._schedule: list[ScheduledFault] = []
        #: (target, kind) -> number of faults fired.
        self.injected: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_rate(self, target: str, kind: str, rate: float) -> None:
        """Probability that one consultation (or one block, for
        :meth:`roll`) at ``target`` fires a ``kind`` fault."""
        if not 0.0 <= rate <= 1.0:
            raise FaultError(f"fault rate must be in [0, 1], got {rate}")
        if rate == 0.0:
            self._rates.pop((target, kind), None)
        else:
            self._rates[(target, kind)] = rate

    def arm(self, target: str, kind: str, count: int = 1) -> None:
        """Queue ``count`` guaranteed firings of ``kind`` at ``target``."""
        if count <= 0:
            raise FaultError(f"armed fault count must be positive, got {count}")
        key = (target, kind)
        self._armed[key] = self._armed.get(key, 0) + count

    def schedule(
        self, at_cp: int, target: str, kind: str, count: int = 1, arg: int | None = None
    ) -> None:
        """Script a fault to fire just before CP ``at_cp`` (see :meth:`due`)."""
        self._schedule.append(ScheduledFault(at_cp, target, kind, count, arg))

    # ------------------------------------------------------------------
    # Consultation (called by the storage stack)
    # ------------------------------------------------------------------
    def _record(self, key: tuple[str, str], n: int = 1) -> None:
        self.injected[key] = self.injected.get(key, 0) + n

    def consume(self, target: str, kind: str) -> bool:
        """One yes/no consultation: drains one armed one-shot if any,
        else rolls the configured rate (no rng draw when no rate is
        set, preserving determinism for schedule-only runs)."""
        key = (target, kind)
        armed = self._armed.get(key, 0)
        if armed:
            self._armed[key] = armed - 1
            self._record(key)
            return True
        rate = self._rates.get(key)
        if rate is not None and float(self.rng.random()) < rate:
            self._record(key)
            return True
        return False

    def roll(self, target: str, kind: str, n: int) -> int:
        """How many of ``n`` blocks at ``target`` are hit by ``kind``:
        armed one-shots (up to ``n``) plus a binomial draw at the
        configured per-block rate."""
        if n <= 0:
            return 0
        key = (target, kind)
        hits = 0
        armed = self._armed.get(key, 0)
        if armed:
            hits = min(armed, n)
            self._armed[key] = armed - hits
        rate = self._rates.get(key)
        if rate is not None:
            hits += int(self.rng.binomial(n - hits, rate)) if hits < n else 0
        hits = min(hits, n)
        if hits:
            self._record(key, hits)
        return hits

    def due(self, cp: int) -> list[ScheduledFault]:
        """Pop every scheduled fault with ``at_cp <= cp``, in schedule
        order (the chaos runner applies them before running the CP)."""
        fire = [f for f in self._schedule if f.at_cp <= cp]
        self._schedule = [f for f in self._schedule if f.at_cp > cp]
        for f in fire:
            self._record((f.target, f.kind), f.count)
        return fire

    @property
    def pending(self) -> int:
        """Scheduled faults not yet fired."""
        return len(self._schedule)

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())


# ----------------------------------------------------------------------
# Damage helpers (applied by the chaos runner / tests)
# ----------------------------------------------------------------------

def corrupt_bytes(
    data: bytes, nbytes: int, rng: int | np.random.Generator | None = None
) -> bytes:
    """Flip one random bit in each of ``nbytes`` random positions — the
    torn/corrupted-write model for persisted pages (TopAA)."""
    if not data:
        return data
    rng = make_rng(rng)
    buf = bytearray(data)
    positions = rng.choice(len(buf), size=min(nbytes, len(buf)), replace=False)
    for pos in np.atleast_1d(positions):
        buf[int(pos)] ^= 1 << int(rng.integers(8))
    return bytes(buf)


def flip_bitmap_bits(
    bitmap,
    nbits: int,
    rng: int | np.random.Generator | None = None,
    direction: str = "both",
) -> dict[str, int]:
    """Silently flip ``nbits`` bits of a free-space bitmap, bypassing
    all score/metafile accounting (that is the corruption).

    ``direction`` selects the damage model:

    * ``"clear"`` — allocated bits flip to free (torn write losing
      allocations): Iron reports them as **corrupt** (referenced but
      marked free).
    * ``"set"`` — free bits flip to allocated (a lost free): Iron
      reports them as **leaked**.
    * ``"both"`` — an even split.

    Returns ``{"set": n, "cleared": n}`` actually flipped (bounded by
    available bits of each polarity).
    """
    if direction not in ("set", "clear", "both"):
        raise FaultError(f"unknown flip direction {direction!r}")
    rng = make_rng(rng)
    want_clear = nbits if direction == "clear" else nbits // 2 if direction == "both" else 0
    want_set = nbits - want_clear if direction != "clear" else 0
    flipped = {"set": 0, "cleared": 0}
    if want_clear:
        allocated = bitmap.allocated_in_range(0, bitmap.nblocks)
        if allocated.size:
            take = min(want_clear, int(allocated.size))
            picks = rng.choice(allocated, size=take, replace=False)
            bitmap.free(np.asarray(picks, dtype=np.int64))
            flipped["cleared"] = take
    if want_set:
        free = bitmap.free_in_range(0, bitmap.nblocks)
        if free.size:
            take = min(want_set, int(free.size))
            picks = rng.choice(free, size=take, replace=False)
            bitmap.allocate(np.asarray(picks, dtype=np.int64))
            flipped["set"] = take
    return flipped
