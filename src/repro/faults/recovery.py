"""Degraded-mode recovery orchestration.

The self-healing sequence after detected metafile damage:

1. :func:`escalate` — put the damaged file systems (and only those)
   into degraded allocation (direct bitmap walk) and run a *scoped*
   :func:`repro.fs.iron.repair` that recomputes their bitmaps and
   score keepers from the reference maps, leaving the AA caches
   offline.  Allocation keeps succeeding throughout — the graceful
   degradation the paper attributes to caches being an optimization,
   never a correctness dependency.
2. Run CPs in this state for as long as the operator likes; the
   :class:`~repro.core.policies.BitmapWalkSource` counts its selects
   and scanned bits (the cost of running cache-less).
3. :func:`exit_degraded` — rebuild fresh AA caches from a charged
   bitmap walk and swap them in, returning the system to the cached
   fast path.
"""

from __future__ import annotations

from ..common.errors import MountError
from ..common.retry import RetryBudget, retry_with_backoff
from ..core.cache import make_aa_cache
from ..fs.filesystem import WaflSim
from ..fs.iron import IronReport, repair
from ..fs.mount import DEFAULT_MOUNT_RETRIES

__all__ = ["attach_everywhere", "instances", "degraded_instances", "escalate", "exit_degraded"]


def instances(sim: WaflSim) -> dict[str, object]:
    """All fault-addressable file-system instances by ``where`` label."""
    out: dict[str, object] = {}
    for where, fs, _ in sim.store.physical_instances():
        out[where] = fs
    for vol in sim.vols.values():
        out[vol.where] = vol
    return out


def attach_everywhere(sim: WaflSim, injector) -> None:
    """Attach one injector to every read path in the simulator."""
    sim.store.attach_injector(injector)
    for vol in sim.vols.values():
        vol.attach_injector(injector)


def degraded_instances(sim: WaflSim) -> list[str]:
    """Labels of file systems currently allocating via the bitmap walk."""
    return [w for w, fs in instances(sim).items() if fs.degraded_alloc]


def escalate(sim: WaflSim, wheres) -> IronReport:
    """Scoped Iron escalation for damaged file systems.

    Each named instance enters degraded allocation, then a scoped
    repair rewrites its bitmap and score keeper from the reference
    maps (``rebuild_caches=False`` keeps the caches offline — the
    degraded window models the rebuild time).  Returns the repair
    report: exactly the findings that were fixed.
    """
    scope = set(wheres)
    if not scope:
        return IronReport(repaired=True)
    by_where = instances(sim)
    unknown = sorted(scope - set(by_where))
    if unknown:
        raise MountError(
            f"escalate: unknown file-system labels {unknown}; "
            f"valid labels are {sorted(by_where)}"
        )
    for where in sorted(scope):
        fs = by_where[where]
        if not fs.degraded_alloc:
            fs.enter_degraded()
    return repair(sim, scope=scope, rebuild_caches=False)


def exit_degraded(sim: WaflSim, *, budget: RetryBudget | None = None) -> int:
    """Rebuild AA caches for every degraded file system and swap them
    in (the background rebuild completing).  Charges one bitmap walk
    per rebuilt cache; returns the number of metafile blocks read.

    Walks retry transient faults from ``budget`` (a fresh bounded
    budget when omitted) and raise the typed
    :class:`~repro.common.errors.RecoveryExhaustedError` when it runs
    dry, instead of dying on the first transient hiccup."""
    if budget is None:
        budget = RetryBudget(DEFAULT_MOUNT_RETRIES)

    def _read(fs) -> int:
        blocks, _, _ = retry_with_backoff(
            fs.read_metafile, budget=budget, base_backoff_us=0.0, where=fs.where
        )
        return blocks

    blocks_read = 0
    store = sim.store
    touched = False
    for _, fs, _ in store.physical_instances():
        if not fs.degraded_alloc:
            continue
        blocks_read += _read(fs)
        scores = fs.topology.scores_from_bitmap(fs.metafile.bitmap)
        fs.adopt_cache(make_aa_cache(fs.topology, scores))
        touched = True
    if touched:
        # Group-level cache adoption invalidates the aggregate
        # allocator's bindings; linear stores make this a no-op.
        store.rebind_allocators()
    for vol in sim.vols.values():
        if not vol.degraded_alloc:
            continue
        blocks_read += _read(vol)
        scores = vol.topology.scores_from_bitmap(vol.metafile.bitmap)
        vol.adopt_cache(make_aa_cache(vol.topology, scores))
    return blocks_read
