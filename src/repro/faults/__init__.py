"""Fault injection and recovery (robustness extension).

Paper section 3.4 closes the failure story in one sentence: damaged
metafile blocks that RAID cannot reconstruct are recomputed by WAFL
Iron, because bitmaps, scores, and AA caches are all *derived* state.
This package makes that story executable: a seeded, deterministic
:class:`FaultInjector` drives latent sector errors, torn/lost writes,
and whole-disk failures through the stack, and the recovery machinery
(degraded RAID reads, checksummed TopAA pages, scoped Iron escalation,
bitmap-walk allocation) absorbs them with zero failed allocations.
"""

from .injector import (
    FaultInjector,
    FaultKind,
    ScheduledFault,
    corrupt_bytes,
    flip_bitmap_bits,
)
from .recovery import (
    attach_everywhere,
    degraded_instances,
    escalate,
    exit_degraded,
    instances,
)
from .scenario import ChaosScenario, RecoveryMetrics, default_scenario, run_chaos
from .underload import PHASES, UnderLoadMetrics, run_chaos_under_load

__all__ = [
    "FaultInjector",
    "FaultKind",
    "ScheduledFault",
    "corrupt_bytes",
    "flip_bitmap_bits",
    "attach_everywhere",
    "degraded_instances",
    "escalate",
    "exit_degraded",
    "instances",
    "ChaosScenario",
    "RecoveryMetrics",
    "default_scenario",
    "run_chaos",
    "PHASES",
    "UnderLoadMetrics",
    "run_chaos_under_load",
]
