"""Chaos under load: disk failure and repair beneath live traffic.

:mod:`repro.faults.scenario` proves the recovery machinery absorbs
faults under a single scripted workload.  This module asks the
production question on top of the multi-tenant traffic engine: when a
data disk dies *while N tenants are being served*, does every tenant
keep completing operations (zero failed allocations), and what happens
to each tenant's tail latency across the healthy → degraded → repaired
phases?  Degraded-mode RAID charges reconstruction reads into the CP's
device time, so the engine's charge-back makes the per-tenant latency
cost of the failure directly measurable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..common.config import SimConfig
from ..common.errors import AllocationError, OutOfSpaceError
from ..fs.aggregate import RAIDStore
from ..traffic.engine import TrafficEngine
from ..traffic.scenarios import build_scenario, build_traffic_sim, calibrate_capacity

__all__ = ["PHASES", "UnderLoadMetrics", "run_chaos_under_load"]

PHASES = ("healthy", "degraded", "repaired")


@dataclass
class UnderLoadMetrics:
    """Outcome of one chaos-under-load run (same-seed deterministic)."""

    cps_completed: int = 0
    #: Allocation requests that failed — the acceptance bar is zero.
    failed_allocations: int = 0
    disk_failures: int = 0
    disks_replaced: int = 0
    rebuild_us: float = 0.0
    #: Degraded-RAID accounting across the run.
    reconstruction_reads: int = 0
    degraded_stripes: int = 0
    #: phase -> tenant -> p99 latency (ms) of ops completing in-phase.
    phase_p99_ms: dict[str, dict[str, float]] = field(default_factory=dict)
    #: phase -> tenant -> ops completed in-phase.
    phase_completed: dict[str, dict[str, int]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return asdict(self)


def run_chaos_under_load(
    *,
    scenario: str = "uniform",
    n_tenants: int | None = None,
    seed: int = 7,
    n_cps: int | None = None,
    fail_at_cp: int | None = None,
    replace_at_cp: int | None = None,
    group: int = 0,
    disk: int = 1,
    blocks_per_disk: int | None = None,
) -> tuple[UnderLoadMetrics, TrafficEngine]:
    """Run a traffic scenario with a mid-run disk failure and repair.

    Disk ``disk`` of RAID group ``group`` fails before CP
    ``fail_at_cp`` (default: a third in) and is replaced (rebuilt from
    parity) before CP ``replace_at_cp`` (default: two thirds in).  The
    traffic engine keeps serving every tenant throughout; per-tenant
    p99 is reported separately for the healthy, degraded, and repaired
    phases.  Returns ``(metrics, engine)``; the engine's summary holds
    whole-run per-tenant results.
    """
    cfg = SimConfig.default()
    if n_tenants is None:
        n_tenants = cfg.traffic.default_tenants
    if n_cps is None:
        n_cps = cfg.faults.underload_n_cps
    if blocks_per_disk is None:
        blocks_per_disk = cfg.faults.underload_blocks_per_disk
    if fail_at_cp is None:
        fail_at_cp = int(n_cps * cfg.faults.fail_at_fraction)
    if replace_at_cp is None:
        replace_at_cp = int(n_cps * cfg.faults.replace_at_fraction)
    if not 0 < fail_at_cp < replace_at_cp < n_cps:
        raise ValueError(
            f"need 0 < fail_at_cp ({fail_at_cp}) < replace_at_cp "
            f"({replace_at_cp}) < n_cps ({n_cps})"
        )
    sim = build_traffic_sim(n_tenants, blocks_per_disk=blocks_per_disk)
    if not isinstance(sim.store, RAIDStore):
        raise ValueError("chaos-under-load requires a RAID store")
    cal = calibrate_capacity(sim)
    tenants = build_scenario(
        scenario, sim, cal.capacity_ops, n_tenants=n_tenants, seed=seed
    )
    engine = TrafficEngine(sim, tenants)
    metrics = UnderLoadMetrics()
    for cp in range(n_cps):
        if cp == fail_at_cp:
            sim.store.fail_disk(group, disk)
            metrics.disk_failures += 1
        if cp == replace_at_cp:
            metrics.rebuild_us += sim.store.groups[group].replace_disk(disk)
            metrics.disks_replaced += 1
        try:
            engine.step()
            metrics.cps_completed += 1
        except (AllocationError, OutOfSpaceError):
            metrics.failed_allocations += 1
    for stats in sim.metrics.cps:
        metrics.reconstruction_reads += stats.reconstruction_reads
        metrics.degraded_stripes += stats.degraded_stripes

    edges_us = (
        0.0,
        fail_at_cp * engine.cp_interval_us,
        replace_at_cp * engine.cp_interval_us,
        engine.clock_us,
    )
    for phase, lo, hi in zip(PHASES, edges_us[:-1], edges_us[1:]):
        p99s: dict[str, float] = {}
        counts: dict[str, int] = {}
        for st in engine.states:
            complete = st.complete_array()
            latency = st.latency_array()
            mask = (complete > lo) & (complete <= hi)
            n = int(mask.sum())
            counts[st.spec.name] = n
            p99s[st.spec.name] = (
                float(np.percentile(latency[mask], 99)) / 1e3 if n else 0.0
            )
        metrics.phase_p99_ms[phase] = p99s
        metrics.phase_completed[phase] = counts
    return metrics, engine
