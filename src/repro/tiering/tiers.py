"""Typed tier roles and the per-volume tier/geometry chooser.

The paper's evaluation spans media families with very different
write-allocation behavior (section 2.1: HDD and SSD RAID groups, SMR,
object stores).  A heterogeneous aggregate composes several of them
into one physical VBN space; the chooser here decides which declared
tier should host each volume, from the volume's declared workload hint
and — for undeclared ("mixed") volumes — the measured op mix of a
prior run (via :meth:`~repro.sim.stats.MetricsLog.query`).
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from ..common.config import TierSpec
from ..common.errors import TieringError
from ..sim.stats import MetricsLog

__all__ = ["Tier", "media_role", "role_of", "serviceable_tiers", "choose_tier"]


class Tier(enum.Enum):
    """Service-tier roles a heterogeneous aggregate can offer.

    This replaces the historical ``tier="fast"`` string plumbing: code
    that needs to talk about tiers passes these members (or their
    ``.value`` where a wire format needs a string) — simlint rule T701
    flags raw tier-name literals outside :mod:`repro.tiering`.
    """

    #: Low-latency overwrite tier (SSD groups).
    FAST = "fast"
    #: Bulk capacity tier (HDD / SMR groups).
    CAPACITY = "capacity"
    #: Cold-data tier (object store backends).
    ARCHIVE = "archive"


#: Media ordered fastest-first for chooser tie-breaking.
_SPEED = {"ssd": 0, "hdd": 1, "smr": 2, "object": 3}


def media_role(media: str) -> Tier:
    """The service role a media family fills (the fleet scheduler uses
    this to advertise what roles a shard's devices can serve)."""
    if media == "ssd":
        return Tier.FAST
    if media == "object":
        return Tier.ARCHIVE
    return Tier.CAPACITY


def role_of(tier: TierSpec) -> Tier:
    """The service role a declared tier plays, from its media family."""
    return media_role(tier.media)


def serviceable_tiers(tiers: Iterable[TierSpec]) -> dict[Tier, list[str]]:
    """Tier labels grouped by the service role they can fill — what a
    fleet scheduler advertises for an aggregate (see
    :mod:`repro.cluster.scheduler`)."""
    out: dict[Tier, list[str]] = {}
    for t in tiers:
        out.setdefault(role_of(t), []).append(t.label)
    return out


def choose_tier(
    tiers: Sequence[TierSpec],
    workload: str,
    *,
    metrics: MetricsLog | None = None,
) -> str:
    """Pick the tier (by label) that should host a volume.

    ``workload`` is the volume's declared hint; ``metrics`` — when
    given — resolves "mixed" volumes from the measured op mix: a low
    full-stripe fraction means the run was dominated by small random
    overwrites (treat as OLTP), a high one means large sequential
    writes (treat as sequential churn).

    Preference order by workload:

    * ``oltp`` — mirrored SSD first (overwrites pay no parity RMW and
      no seek), then any SSD, then faster media.
    * ``sequential`` — dual-parity capacity media first (RAID-DP SMR,
      then RAID-DP HDD: full stripes amortize the double parity and
      zone/track-friendly sequential streams suit shingled media).
    * ``archive`` — object tier, then the slowest media present.
    * ``mixed`` — measured op mix when available, else the largest
      tier by physical capacity.

    Ties break toward the earliest declared tier.
    """
    if not tiers:
        raise TieringError("choose_tier: no tiers declared")
    if workload == "mixed":
        if metrics is not None and metrics.cps:
            fsf = metrics.query("full_stripe_fraction")
            workload = "sequential" if fsf >= 0.5 else "oltp"
        else:
            return max(tiers, key=lambda t: t.physical_blocks).label
    if workload == "oltp":

        def key(t: TierSpec):
            return (
                not (t.media == "ssd" and t.raid == "mirror"),
                _SPEED[t.media],
                t.raid != "mirror",
            )

    elif workload == "sequential":
        # Capacity media first (shingled zones love sequential streams),
        # and never the object tier ahead of local media.
        churn_order = {"smr": 0, "hdd": 1, "ssd": 2, "object": 3}

        def key(t: TierSpec):
            return (
                not (t.raid == "raid_dp" and t.media in ("smr", "hdd")),
                churn_order[t.media],
            )

    elif workload == "archive":

        def key(t: TierSpec):
            return (t.media != "object", -_SPEED[t.media])

    else:
        raise TieringError(f"choose_tier: unknown workload hint {workload!r}")
    return min(tiers, key=key).label
