"""TieredStore: several physical stores composed into one aggregate.

Each declared :class:`~repro.common.config.TierSpec` becomes one
*member* store — a :class:`~repro.fs.aggregate.RAIDStore` (RAID 4 /
RAID-DP / mirrored groups of HDD, SSD, or SMR devices) or a
:class:`~repro.fs.aggregate.LinearStore` (object backend).  The members
are stock single-tier stores; this class owns the global VBN space and
converts global ↔ member-local VBNs at its own boundary, so everything
below it (allocators, bitmaps, caches, parity pricing) is reused
unchanged.

The store implements the same structural surface the CP engine, Iron,
the auditor, and the recovery orchestrator already consume —
``allocate`` / ``log_free`` / ``cp_boundary`` / ``physical_instances``
— plus per-tier addressing (:meth:`allocate_in`, :meth:`tier_usage`)
for the tier policies in :mod:`repro.tiering.policies`.
"""

from __future__ import annotations

import numpy as np

from ..common.config import AggregateSpec, SimConfig, TierSpec
from ..common.errors import TieringError
from ..common.rng import make_rng
from ..devices.base import Device
from ..devices.objectstore import ObjectStoreConfig
from ..fs.aggregate import (
    LinearStore,
    PolicyKind,
    RAIDStore,
    StoreCPReport,
    TierPolicy,
)
from ..fs.filesystem import _tier_group_configs
from .tiers import choose_tier

__all__ = ["TieredStore", "make_tiered_store"]

#: Counter fields a merged :class:`StoreCPReport` sums over members.
_SUMMED_FIELDS = (
    "device_total_us",
    "metafile_blocks",
    "blocks_written",
    "blocks_freed",
    "full_stripes",
    "partial_stripes",
    "tetrises",
    "chains",
    "parity_reads",
    "reconstruction_reads",
    "degraded_stripes",
    "cache_ops",
    "aa_switches",
    "spanned_blocks",
)


class TieredStore:
    """One aggregate VBN space over per-tier member stores."""

    #: See :attr:`repro.fs.aggregate.RAIDStore.tier_policy`; builders
    #: attach a :class:`~repro.tiering.policies.StaticTierPolicy`.
    tier_policy: TierPolicy | None = None

    def __init__(self, tiers: list[TierSpec], members: list[object]) -> None:
        if len(tiers) != len(members) or not tiers:
            raise TieringError("TieredStore needs one member store per tier")
        self.tiers = list(tiers)
        self.members = list(members)
        self.labels = [t.label for t in self.tiers]
        self.bases: list[int] = []
        offset = 0
        group_index = 0
        for tier, member in zip(self.tiers, self.members):
            if member.nblocks != tier.physical_blocks:
                raise TieringError(
                    f"tier {tier.label!r}: member store has {member.nblocks} "
                    f"blocks but the spec declares {tier.physical_blocks}"
                )
            self.bases.append(offset)
            offset += member.nblocks
            # Fault/Iron addressing labels must be unique across the
            # whole aggregate: renumber RAID groups globally and tag
            # linear members with their tier label.
            if isinstance(member, RAIDStore):
                for g in member.groups:
                    g.where = f"group:{group_index}"
                    group_index += 1
            else:
                member.where = f"store:{tier.label}"
        self.nblocks = offset
        self._bounds = np.asarray(self.bases + [self.nblocks], dtype=np.int64)

    # ------------------------------------------------------------------
    # Tier addressing
    # ------------------------------------------------------------------
    def member(self, label: str):
        """The member store backing tier ``label``."""
        try:
            return self.members[self.labels.index(label)]
        except ValueError:
            raise TieringError(
                f"unknown tier {label!r}; aggregate tiers: {self.labels}"
            ) from None

    def tier_index_of(self, vbns: np.ndarray) -> np.ndarray:
        """Tier index owning each global VBN."""
        vbns = np.asarray(vbns, dtype=np.int64)
        return self._bounds.searchsorted(vbns, side="right") - 1

    def tier_usage(self) -> dict[str, dict[str, int]]:
        """Per-tier capacity snapshot: total, used, and free blocks."""
        out: dict[str, dict[str, int]] = {}
        for tier, member in zip(self.tiers, self.members):
            free = member.free_count
            out[tier.label] = {
                "nblocks": member.nblocks,
                "used": member.nblocks - free,
                "free": free,
            }
        return out

    def allocate_in(self, label: str, n: int) -> np.ndarray:
        """Allocate up to ``n`` blocks from one tier; returns global
        VBNs.  No cross-tier fallback — that is tier-policy business."""
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        idx = self.labels.index(label) if label in self.labels else -1
        if idx < 0:
            raise TieringError(
                f"unknown tier {label!r}; aggregate tiers: {self.labels}"
            )
        got = self.members[idx].allocate(n)
        if got.size and self.bases[idx]:
            got = got + self.bases[idx]
        return got

    # ------------------------------------------------------------------
    # Store API (the surface the CP engine and WaflSim consume)
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return sum(m.free_count for m in self.members)

    @property
    def devices(self) -> list[Device]:
        return [d for m in self.members for d in m.devices]

    @property
    def groups(self):
        """All RAID groups across RAID-backed members (aging hooks and
        stripe reports iterate these; object members contribute none)."""
        return [g for m in self.members if isinstance(m, RAIDStore) for g in m.groups]

    def allocate(self, n: int) -> np.ndarray:
        """Tier-blind allocation: fill tiers in declaration order.
        Only reached when no tier policy is attached."""
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = []
        got = 0
        for label in self.labels:
            if got >= n:
                break
            take = self.allocate_in(label, n - got)
            if take.size:
                out.append(take)
                got += take.size
        if not out:
            return np.empty(0, dtype=np.int64)
        return out[0] if len(out) == 1 else np.concatenate(out)

    def log_free(self, vbns: np.ndarray) -> None:
        """Log global VBNs for freeing at the next CP boundary."""
        vbns = np.asarray(vbns, dtype=np.int64)
        if vbns.size == 0:
            return
        if len(self.members) == 1:
            self.members[0].log_free(vbns)
            return
        idx = self.tier_index_of(vbns)
        for i, member in enumerate(self.members):
            mask = idx == i
            if mask.any():
                member.log_free(vbns[mask] - self.bases[i])

    def charge_reads(self, n_random: int) -> None:
        """Queue client random reads, spread across tiers proportional
        to capacity (reads land where data lives; capacity is the
        deterministic stand-in for per-tier residency)."""
        if n_random <= 0:
            return
        left = n_random
        for i, member in enumerate(self.members):
            if i == len(self.members) - 1:
                share = left
            else:
                share = min(
                    left, int(round(n_random * member.nblocks / self.nblocks))
                )
            left -= share
            member.charge_reads(share)

    def cp_boundary(self) -> StoreCPReport:
        """Run every member's CP boundary and merge: counters sum,
        bottleneck busy time is the max over members (tiers flush in
        parallel), and each member's report lands in ``by_tier``."""
        report = StoreCPReport()
        busy: list[float] = []
        for tier, member in zip(self.tiers, self.members):
            r = member.cp_boundary()
            report.by_tier[tier.label] = r
            for f in _SUMMED_FIELDS:
                setattr(report, f, getattr(report, f) + getattr(r, f))
            report.groups.extend(r.groups)
            busy.append(r.device_busy_us)
        report.device_busy_us = max(busy) if busy else 0.0
        return report

    def rebind_allocators(self) -> None:
        for m in self.members:
            m.rebind_allocators()

    def attach_injector(self, injector) -> None:
        for m in self.members:
            m.attach_injector(injector)

    def physical_instances(self) -> list[tuple[str, object, int]]:
        """Members' instances, shifted to this aggregate's VBN space."""
        out: list[tuple[str, object, int]] = []
        for base, member in zip(self.bases, self.members):
            out.extend(
                (where, fs, base + local)
                for where, fs, local in member.physical_instances()
            )
        return out

    def selected_aa_free_fractions(self) -> np.ndarray:
        fracs = [m.selected_aa_free_fractions() for m in self.members]
        return np.concatenate(fracs) if fracs else np.empty(0, dtype=np.float64)


def make_tiered_store(
    spec: AggregateSpec,
    *,
    policy: PolicyKind = PolicyKind.CACHE,
    config: SimConfig | None = None,
    object_config: ObjectStoreConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> TieredStore:
    """Build a :class:`TieredStore` from a multi-tier spec, with the
    build-time chooser's volume→tier assignments attached as a
    :class:`~repro.tiering.policies.StaticTierPolicy`.

    Member stores consume the shared ``seed`` generator in tier
    declaration order, so the same spec + seed reproduces the same
    aggregate bit for bit.
    """
    from .policies import StaticTierPolicy

    rng = make_rng(seed)
    members: list[object] = []
    for tier in spec.tiers:
        if tier.media == "object":
            members.append(
                LinearStore(
                    tier.nblocks,
                    blocks_per_aa=tier.blocks_per_aa,
                    policy=policy,
                    object_config=object_config,
                    config=config,
                    seed=rng,
                )
            )
        else:
            members.append(
                RAIDStore(
                    _tier_group_configs(tier),
                    policy=policy,
                    config=config,
                    seed=rng,
                )
            )
    store = TieredStore(list(spec.tiers), members)
    assignments = {
        v.name: choose_tier(spec.tiers, v.workload) for v in spec.volumes
    }
    store.tier_policy = StaticTierPolicy(
        assignments, default=choose_tier(spec.tiers, "mixed")
    )
    return store
