"""Intra-aggregate tier migration.

A tier migration rewrites a volume's mapped blocks through the normal
COW/CP path with the volume's tier assignment flipped: every mapped
logical block is dirtied, the CP allocates its new physical homes on
the target tier, and the old homes are delayed-freed — the same
machinery the cluster's cross-aggregate ``migrate_volume`` uses, run
here at intra-aggregate granularity.  Because the copy *is* a CP, it is
priced, audited, and crash-consistent like any other CP.

:func:`rebalance_tiers` is the background pass: it compares each
volume's current assignment with what the chooser would pick from the
declared workload plus the measured op mix, and migrates the
disagreements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import TieringError
from ..fs.cp import CPBatch
from .store import TieredStore
from .tiers import choose_tier

__all__ = [
    "TierMigrationReport",
    "volume_tier_blocks",
    "migrate_volume_tier",
    "recommend_tiers",
    "rebalance_tiers",
]


@dataclass(frozen=True)
class TierMigrationReport:
    """Block-conservation accounting for one volume migration."""

    volume: str
    target: str
    #: Physical blocks written by the migration CP.
    copied: int
    #: Physical blocks freed at the migration CP's boundary.
    freed: int
    #: The volume's mapped physical blocks now resident on the target
    #: tier (post-migration).
    used: int


def _tiered_store(sim) -> TieredStore:
    store = sim.store
    if not isinstance(store, TieredStore):
        raise TieringError(
            "tier migration needs a tiered aggregate "
            f"(store is {type(store).__name__})"
        )
    return store


def volume_tier_blocks(sim, vol_name: str) -> dict[str, int]:
    """Mapped physical blocks of ``vol_name`` per tier label."""
    store = _tiered_store(sim)
    vol = sim.vols[vol_name]
    mapped = np.flatnonzero(vol.l2v >= 0)
    counts = dict.fromkeys(store.labels, 0)
    if mapped.size:
        phys = vol.v2p[vol.l2v[mapped]]
        idx = store.tier_index_of(phys)
        for i, label in enumerate(store.labels):
            counts[label] = int((idx == i).sum())
    return counts


def migrate_volume_tier(sim, vol_name: str, target: str) -> TierMigrationReport:
    """Move every mapped block of ``vol_name`` onto tier ``target``.

    Runs one empty CP first to drain pending delayed frees (so the
    conservation check below sees only the migration's own frees), then
    one CP that rewrites the volume's full mapped set under the new
    assignment.  Verifies block conservation — blocks copied == blocks
    freed == blocks now on the target tier == the volume's mapped set —
    and raises :class:`TieringError` on any mismatch.
    """
    store = _tiered_store(sim)
    if target not in store.labels:
        raise TieringError(
            f"unknown tier {target!r}; aggregate tiers: {store.labels}"
        )
    policy = store.tier_policy
    if policy is None or not hasattr(policy, "assign"):
        raise TieringError(
            "tier migration needs a StaticTierPolicy-style policy "
            "with per-volume assignments"
        )
    vol = sim.vols.get(vol_name)
    if vol is None:
        raise TieringError(f"unknown volume {vol_name!r}")
    if vol._snapshots:
        raise TieringError(
            f"volume {vol_name} holds snapshots; snapshot-pinned blocks "
            "cannot be migrated without breaking COW sharing"
        )

    # Drain frees queued by earlier CPs so the accounting below is
    # exactly the migration's.
    sim.engine.run_cp(CPBatch())

    policy.assign(vol_name, target)
    mapped = np.flatnonzero(vol.l2v >= 0)
    if mapped.size == 0:
        return TierMigrationReport(vol_name, target, 0, 0, 0)

    stats = sim.engine.run_cp(CPBatch(writes={vol_name: mapped}))
    copied = stats.physical_blocks
    freed = sum(stats.freed_by_tier.values())
    used = volume_tier_blocks(sim, vol_name)[target]
    if not (copied == freed == used == int(mapped.size)):
        raise TieringError(
            f"tier migration of {vol_name} to {target!r} broke block "
            f"conservation: copied={copied} freed={freed} "
            f"on_target={used} mapped={int(mapped.size)}"
        )
    return TierMigrationReport(vol_name, target, copied, freed, used)


def recommend_tiers(sim) -> dict[str, str]:
    """Chooser verdict per volume: declared workload hint refined by the
    aggregate's measured op mix (for "mixed" volumes)."""
    store = _tiered_store(sim)
    return {
        name: choose_tier(store.tiers, vol.spec.workload, metrics=sim.metrics)
        for name, vol in sim.vols.items()
    }


def rebalance_tiers(sim) -> list[TierMigrationReport]:
    """The background tier-migration pass: migrate every volume whose
    current assignment disagrees with the chooser's recommendation.
    Returns one conservation report per migrated volume."""
    store = _tiered_store(sim)
    policy = store.tier_policy
    if policy is None or not hasattr(policy, "tier_of"):
        raise TieringError("rebalance needs a policy with per-volume state")
    reports: list[TierMigrationReport] = []
    for name, want in recommend_tiers(sim).items():
        if policy.tier_of(name) != want:
            reports.append(migrate_volume_tier(sim, name, want))
    return reports
