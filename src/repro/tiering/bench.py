"""The ``tier`` bench experiment: a heterogeneous-aggregate demo.

Builds one mixed SSD + HDD + SMR aggregate, lets the chooser place an
OLTP volume on the mirrored-SSD tier and a sequential-churn volume on
the RAID-DP SMR tier, drives fill + random churn through it, then
deliberately misplaces the OLTP volume and lets the background
rebalance pass correct it — asserting block conservation on every
migration.  The payload is fully deterministic for a given seed and is
pinned by ``benchmarks/baselines/bench_tier_quick.json`` in CI.
"""

from __future__ import annotations

import hashlib
import json

from ..analysis.auditor import audit_sim
from ..common.config import AggregateSpec, SimConfig, TierSpec, VolumeDecl
from ..common.errors import TieringError
from ..common.rng import derive_seed
from ..fs import iron
from ..fs.filesystem import WaflSim
from ..workloads import RandomOverwriteWorkload, fill_volumes
from .migration import rebalance_tiers, migrate_volume_tier, volume_tier_blocks

__all__ = ["tier_demo_spec", "build_tiered_sim", "run_tier_bench"]


def tier_demo_spec(quick: bool = False) -> AggregateSpec:
    """The demo aggregate: mirrored SSD + RAID-4 HDD + RAID-DP SMR
    tiers, with one volume per workload personality."""
    bpd = 4096 if quick else 16384
    lb = 4096 if quick else 16384
    return AggregateSpec(
        tiers=(
            TierSpec(
                label="flash", media="ssd", raid="mirror",
                ndata=4, blocks_per_disk=bpd,
            ),
            # Widest tier: undeclared ("mixed") volumes land on the
            # largest tier by capacity, so the demo uses all three.
            TierSpec(
                label="disk", media="hdd", raid="raid4",
                ndata=8, blocks_per_disk=bpd,
            ),
            # SMR disks are AZCS-aligned: sizes are multiples of the
            # 504-stripe AZCS/topology alignment unit.
            TierSpec(
                label="smr", media="smr", raid="raid_dp",
                ndata=8, blocks_per_disk=4032 if quick else 16128,
                stripes_per_aa=504 if quick else 2016,
                zone_blocks=2048, azcs=True,
            ),
        ),
        volumes=(
            VolumeDecl("oltp0", logical_blocks=lb, workload="oltp"),
            VolumeDecl("stream0", logical_blocks=2 * lb, workload="sequential"),
            VolumeDecl("scratch0", logical_blocks=lb, workload="mixed"),
        ),
    )


def build_tiered_sim(
    *,
    quick: bool = False,
    seed: int = 55,
    config: SimConfig | None = None,
) -> WaflSim:
    """Build the demo's tiered :class:`WaflSim` (same spec + seed =>
    byte-identical aggregate)."""
    return WaflSim.build(tier_demo_spec(quick), config=config, seed=seed)


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def run_tier_bench(
    *,
    quick: bool = False,
    seed: int = 55,
    audit: bool = True,
    config: SimConfig | None = None,
) -> dict:
    """Run the heterogeneous-tier demo and return its bench payload."""
    sim = build_tiered_sim(quick=quick, seed=seed, config=config)
    store = sim.store
    policy = store.tier_policy
    placements = {name: policy.tier_of(name) for name in sim.vols}
    if placements["oltp0"] != "flash" or placements["stream0"] != "smr":
        raise TieringError(
            f"chooser placed the demo volumes unexpectedly: {placements}"
        )

    fill_cps = fill_volumes(
        sim, ops_per_cp=8192, seed=derive_seed(seed, "fill")
    )
    churn_cps = 3 if quick else 6
    wl = iter(
        RandomOverwriteWorkload(
            sim, ops_per_cp=2048, seed=derive_seed(seed, "churn")
        )
    )
    for _ in range(churn_cps):
        sim.engine.run_cp(next(wl))

    # Deliberate misplacement: shove the OLTP volume onto the SMR tier,
    # churn a little more, then let the background pass put it back.
    misplace = migrate_volume_tier(sim, "oltp0", "smr")
    for _ in range(2):
        sim.engine.run_cp(next(wl))
    corrections = rebalance_tiers(sim)
    if not any(r.volume == "oltp0" and r.target == "flash" for r in corrections):
        raise TieringError(
            "rebalance pass failed to move oltp0 back to the flash tier: "
            f"{corrections}"
        )

    audit_ok = True
    if audit:
        report = audit_sim(sim)
        if not report.ok:
            raise TieringError(
                f"post-demo audit failed: {report.violations[:3]}"
            )
    scan = iron.scan(sim)
    if not scan.clean:
        raise TieringError(f"post-demo Iron scan unclean: {scan.findings[:3]}")

    blocks_by_tier = dict.fromkeys(store.labels, 0)
    freed_by_tier = dict.fromkeys(store.labels, 0)
    for cp in sim.metrics.cps:
        for label, n in cp.blocks_by_tier.items():
            blocks_by_tier[label] += n
        for label, n in cp.freed_by_tier.items():
            freed_by_tier[label] += n

    metrics = {
        "quick": quick,
        "seed": seed,
        "tiers": list(store.labels),
        "placements": placements,
        "placements_final": {
            name: policy.tier_of(name) for name in sim.vols
        },
        "fill_cps": fill_cps,
        "churn_cps": churn_cps + 2,
        "cps": len(sim.metrics.cps),
        "tier_usage": store.tier_usage(),
        "blocks_by_tier": blocks_by_tier,
        "freed_by_tier": freed_by_tier,
        "volume_residency": {
            name: volume_tier_blocks(sim, name) for name in sim.vols
        },
        "migrations": [
            {
                "volume": r.volume,
                "target": r.target,
                "copied": r.copied,
                "freed": r.freed,
                "used": r.used,
            }
            for r in [misplace, *corrections]
        ],
        "audit_ok": audit_ok,
        "iron_clean": scan.clean,
    }
    metrics["digest"] = _digest(metrics)
    return {"metrics": metrics}
