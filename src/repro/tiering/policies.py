"""Concrete :class:`~repro.fs.aggregate.TierPolicy` implementations.

The CP engine consults ``store.tier_policy.place(...)`` for every
volume's staged writes; these policies decide which tier (and therefore
which devices) each block lands on.  They are attached by the builders:
:class:`FlashPoolPolicy` by ``WaflSim.build`` for mixed-media RAID
aggregates, :class:`StaticTierPolicy` by
:func:`repro.tiering.make_tiered_store` for multi-tier aggregates.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import OutOfSpaceError, TieringError
from ..devices.base import MediaType

__all__ = ["FlashPoolPolicy", "StaticTierPolicy"]


class FlashPoolPolicy:
    """The paper's Flash Pool placement (section 2.1) for a mixed-media
    :class:`~repro.fs.aggregate.RAIDStore`: overwritten (hot) blocks go
    to the SSD RAID groups, first writes to the capacity groups, each
    side falling back to the other when its groups run dry.

    Stateless; byte-identical to the placement the CP engine used to
    hard-code behind the ``supports_tiering`` probe.
    """

    @staticmethod
    def _media_groups(store, fast: bool) -> list[int]:
        return [
            i
            for i, m in enumerate(store.media_kinds)
            if (m is MediaType.SSD) == fast
        ]

    def _allocate(self, store, n: int, *, fast: bool) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        got = store.allocate(n, groups=self._media_groups(store, fast))
        if got.size < n:
            rest = store.allocate(
                n - got.size, groups=self._media_groups(store, not fast)
            )
            got = np.concatenate([got, rest]) if got.size else rest
        return got

    def place(
        self,
        store,
        vol_name: str,
        ids: np.ndarray,
        was_mapped: np.ndarray,
    ) -> np.ndarray:
        n_hot = int(was_mapped.sum())
        p_hot = self._allocate(store, n_hot, fast=True)
        p_cold = self._allocate(store, int(ids.size) - n_hot, fast=False)
        got = p_hot.size + p_cold.size
        if got < ids.size:
            raise OutOfSpaceError(
                f"aggregate out of space: {got} of {ids.size} "
                f"physical blocks allocated for volume {vol_name}"
            )
        new_p = np.empty(ids.size, dtype=np.int64)
        new_p[was_mapped] = p_hot
        new_p[~was_mapped] = p_cold
        return new_p


class StaticTierPolicy:
    """Per-volume tier pinning for a :class:`~repro.tiering.TieredStore`.

    Each volume allocates from its assigned tier, spilling to the
    remaining tiers in declaration order only when the assigned one
    runs out of space.  Assignments start from the build-time chooser
    and can be overridden live with :meth:`assign` — which is exactly
    what the tier-migration pass does before rewriting a volume.
    """

    def __init__(
        self,
        assignments: dict[str, str] | None = None,
        *,
        default: str,
    ) -> None:
        self.assignments: dict[str, str] = dict(assignments or {})
        self.default = default

    def tier_of(self, vol_name: str) -> str:
        """The tier label this policy routes ``vol_name`` to."""
        return self.assignments.get(vol_name, self.default)

    def assign(self, vol_name: str, label: str) -> None:
        """Pin ``vol_name`` to tier ``label`` from the next CP on."""
        self.assignments[vol_name] = label

    def place(
        self,
        store,
        vol_name: str,
        ids: np.ndarray,
        was_mapped: np.ndarray,
    ) -> np.ndarray:
        label = self.tier_of(vol_name)
        if label not in store.labels:
            raise TieringError(
                f"volume {vol_name} assigned to unknown tier {label!r}; "
                f"aggregate tiers: {store.labels}"
            )
        n = int(ids.size)
        got = store.allocate_in(label, n)
        if got.size < n:
            for other in store.labels:
                if other == label:
                    continue
                more = store.allocate_in(other, n - got.size)
                if more.size:
                    got = np.concatenate([got, more]) if got.size else more
                if got.size >= n:
                    break
        if got.size < n:
            raise OutOfSpaceError(
                f"aggregate out of space: {got.size} of {n} "
                f"physical blocks allocated for volume {vol_name}"
            )
        return got
