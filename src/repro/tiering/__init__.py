"""Heterogeneous multi-tier aggregates (paper section 2.1).

The paper's free-space machinery spans media families with very
different write-allocation behavior: HDD and SSD RAID groups, Flash
Pool hybrids, SMR, and natively redundant object stores.  This package
composes those single-media stores into one aggregate VBN space:

* :class:`TieredStore` — per-tier member stores behind the standard
  store surface, with per-tier addressing and CP reporting;
* :class:`Tier` / :func:`choose_tier` — typed tier roles and the
  per-volume tier/geometry chooser (declared workload hint refined by
  the measured op mix);
* :class:`FlashPoolPolicy` / :class:`StaticTierPolicy` — the
  :class:`~repro.fs.aggregate.TierPolicy` implementations the CP
  engine consults for placement;
* :func:`migrate_volume_tier` / :func:`rebalance_tiers` — COW-based
  intra-aggregate tier migration with block-conservation checks;
* :func:`run_tier_bench` — the ``tier`` bench experiment / CLI demo.
"""

from .bench import build_tiered_sim, run_tier_bench, tier_demo_spec
from .migration import (
    TierMigrationReport,
    migrate_volume_tier,
    rebalance_tiers,
    recommend_tiers,
    volume_tier_blocks,
)
from .policies import FlashPoolPolicy, StaticTierPolicy
from .store import TieredStore, make_tiered_store
from .tiers import Tier, choose_tier, media_role, role_of, serviceable_tiers

__all__ = [
    "Tier",
    "media_role",
    "role_of",
    "serviceable_tiers",
    "choose_tier",
    "FlashPoolPolicy",
    "StaticTierPolicy",
    "TieredStore",
    "make_tiered_store",
    "TierMigrationReport",
    "volume_tier_blocks",
    "migrate_volume_tier",
    "recommend_tiers",
    "rebalance_tiers",
    "tier_demo_spec",
    "build_tiered_sim",
    "run_tier_bench",
]
