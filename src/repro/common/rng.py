"""Deterministic random-number helpers.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` seeded through :func:`make_rng` so that
experiments are reproducible bit-for-bit.  Components that need
independent streams derive them with :func:`spawn`.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

#: Default seed used when callers do not supply one.  Chosen arbitrarily;
#: fixed so that the shipped benchmarks are reproducible.
DEFAULT_SEED: int = 0x0AF1  # arbitrary fixed tag for reproducible runs


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
    existing generator (returned unchanged), which lets every public
    constructor take a uniform ``seed`` argument.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def permute_in_chunks(
    rng: np.random.Generator, total: int, chunk: int
) -> Iterable[np.ndarray]:
    """Yield a random permutation of ``range(total)`` in chunks.

    Used by aging workloads to touch every block exactly once in random
    order without materializing gigantic permutations more than once.
    """
    perm = rng.permutation(total)
    for lo in range(0, total, chunk):
        yield perm[lo : lo + chunk]


def derive_seed(base: int, key: str) -> int:
    """Deterministic child seed: stable across processes and runs
    (``base`` mixed with a CRC of ``key``; same construction the bench
    runner and the cluster use for their per-unit seeds)."""
    return (base * 1_000_003 + zlib.crc32(key.encode())) & 0x7FFFFFFF
