"""Seeded, deterministic retry-with-backoff for recovery paths.

Mount-time page reads and the background rebuild both retry transient
read failures.  Historically each call site carried its own bounded
loop, so the *mount pipeline as a whole* could retry far more times
than any single knob suggested.  :class:`RetryBudget` fixes that: one
budget object is threaded through every phase of a recovery and every
retry, anywhere, draws from the same bounded pool.  Exhaustion raises
the typed :class:`~repro.common.errors.RecoveryExhaustedError`.

Backoff is *modeled* time (microseconds charged to the caller's
report), never a real sleep, and any jitter comes from a caller-seeded
:func:`numpy.random.Generator` — a recovery replays byte-identically
for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .errors import RecoveryExhaustedError, TransientIOError

__all__ = ["RetryBudget", "retry_with_backoff"]


@dataclass
class RetryBudget:
    """A bounded pool of retries shared across recovery phases."""

    limit: int
    used: int = 0

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.used)

    def consume(self, where: str = "") -> None:
        """Spend one retry; raises when the pool is dry."""
        if self.used >= self.limit:
            site = f" at {where}" if where else ""
            raise RecoveryExhaustedError(
                f"recovery retry budget exhausted{site} "
                f"({self.used}/{self.limit} retries used)"
            )
        self.used += 1


def retry_with_backoff(
    fn: Callable[[], Any],
    *,
    budget: RetryBudget,
    base_backoff_us: float = 1000.0,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
    where: str = "",
) -> tuple[Any, int, float]:
    """Call ``fn`` until it stops raising :class:`TransientIOError`.

    Each retry consumes one unit from ``budget`` (shared with every
    other phase holding the same object) and accrues linear backoff:
    attempt ``k`` charges ``base_backoff_us * k``, scaled by up to
    ``jitter`` drawn from ``rng`` when both are given.  Non-transient
    errors (:class:`~repro.common.errors.MediaError` included)
    propagate immediately.

    Returns ``(result, retries, backoff_us)``.  Raises
    :class:`~repro.common.errors.RecoveryExhaustedError` (chained from
    the last transient failure) when the budget runs out.
    """
    retries = 0
    backoff_us = 0.0
    while True:
        try:
            return fn(), retries, backoff_us
        except TransientIOError as exc:
            if isinstance(exc, RecoveryExhaustedError):
                raise
            try:
                budget.consume(where)
            except RecoveryExhaustedError as dry:
                raise dry from exc
            retries += 1
            step = base_backoff_us * retries
            if jitter > 0.0 and rng is not None:
                step *= 1.0 + jitter * float(rng.random())
            backoff_us += step
