"""Shared NumPy primitives for hot paths.

Profiling the CP pipeline (see ``repro profile``) showed that
``np.unique`` on medium-sized integer batches is dominated by its
hash-table path, and that grouping by a small key space (erase blocks,
RAID groups) is cheaper as a bincount.  These helpers centralize the
faster equivalents so call sites stay one-liners.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sorted_unique", "sorted_unique_counts", "group_counts"]


def sorted_unique(a: np.ndarray) -> np.ndarray:
    """Ascending unique values of an integer array.

    Equivalent to ``np.unique(a)`` but via an explicit sort + adjacent
    comparison, which is several times faster than NumPy's hash-based
    path for the 10K-100K-element batches a CP produces.
    """
    if a.size <= 1:
        return np.sort(a)
    x = np.sort(a)
    keep = np.empty(x.size, dtype=bool)
    keep[0] = True
    np.not_equal(x[1:], x[:-1], out=keep[1:])
    return x[keep]


def sorted_unique_counts(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(values, counts)`` for an integer array, values ascending.

    Equivalent to ``np.unique(a, return_counts=True)`` via the same
    sort + adjacent comparison as :func:`sorted_unique`; counts come
    from the gaps between run starts.
    """
    x = np.sort(a)
    if x.size == 0:
        return x, x.copy()
    starts = np.flatnonzero(np.concatenate(([True], x[1:] != x[:-1])))
    counts = np.diff(np.append(starts, x.size))
    return x[starts], counts


def group_counts(keys: np.ndarray, nkeys: int) -> tuple[np.ndarray, np.ndarray]:
    """``(touched, counts)``: the distinct keys (ascending) and their
    multiplicities, for keys drawn from ``range(nkeys)``.

    Equivalent to ``np.unique(keys, return_counts=True)`` but via a
    bincount, which wins when the key space is small (erase blocks of
    one device, RAID groups of one store).
    """
    c = np.bincount(keys, minlength=nkeys)
    touched = np.flatnonzero(c)
    return touched, c[touched]
