"""Typed, frozen configuration for the whole simulator.

Tunables used to be scattered across keyword defaults (CP threshold
fractions on :class:`~repro.fs.filesystem.WaflSim`, HBPS tuning on the
cache constructors, QoS defaults in :mod:`repro.traffic`, canonical
seeds in :mod:`repro.bench.runner`, chaos defaults in
:mod:`repro.faults`).  This module consolidates them into immutable
dataclasses with one entry point, :meth:`SimConfig.default`; callers
override fields with :func:`dataclasses.replace`:

    from dataclasses import replace
    from repro.common.config import SimConfig

    cfg = SimConfig.default()
    cfg = replace(cfg, allocator=replace(cfg.allocator,
                                         threshold_fraction=0.1))

The config object is the only way to set these tunables; the legacy
loose keyword arguments on the builders were removed after their
one-release deprecation window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from .constants import (
    HBPS_BIN_WIDTH,
    HBPS_LIST_CAPACITY,
    TETRIS_STRIPES,
    TOPAA_RAID_AWARE_ENTRIES,
)

__all__ = [
    "AllocatorConfig",
    "CacheConfig",
    "TrafficConfig",
    "BenchConfig",
    "FaultConfig",
    "ObsConfig",
    "ClusterConfig",
    "SimConfig",
]


@dataclass(frozen=True)
class AllocatorConfig:
    """Write-allocator tunables (paper section 3.3.1)."""

    #: Fragmentation cutoff: a RAID group whose best AA score is below
    #: ``threshold_fraction * aa_blocks`` is skipped while any other
    #: group remains above it.  0 disables the cutoff.
    threshold_fraction: float = 0.0
    #: Stripes taken from each group per round-robin turn (one tetris).
    stripes_per_round: int = TETRIS_STRIPES
    #: Consecutive full AAs a source may propose before the allocator
    #: declares the space dry (score-blind baselines only).
    max_full_aa_retries: int = 128
    #: Legacy per-chunk bitmap/score flushing in the write allocators.
    #: The default batches each AA's taken span into one bitmap scatter
    #: and one score delta per synchronization point (AA switch,
    #: release, CP boundary), which is byte-identical in every metric
    #: (DESIGN.md section 9).  Kept permanently as the scalar reference
    #: pipeline for the identity tests; never the default.
    scalar_bitmap_flush: bool = False


@dataclass(frozen=True)
class CacheConfig:
    """AA-cache tunables (paper sections 3.3.1-3.3.2, 3.4)."""

    #: HBPS histogram bin width (paper default: 1K-wide bins).
    hbps_bin_width: int = HBPS_BIN_WIDTH
    #: HBPS best-AA list capacity (paper default: 1,000 entries).
    hbps_list_capacity: int = HBPS_LIST_CAPACITY
    #: Entries persisted per TopAA page for the RAID-aware cache.
    topaa_raid_aware_entries: int = TOPAA_RAID_AWARE_ENTRIES


@dataclass(frozen=True)
class TrafficConfig:
    """Multi-tenant traffic-engine defaults (QoS substrate)."""

    #: CP pipeline parallelism: the paper's midrange server.
    cores: int = 20
    #: Ops per CP the engine targets when deriving ``cp_interval_us``
    #: (matches the figure benchmarks' batch sizes).
    target_ops_per_cp: int = 2048
    #: Closed-loop clients for the knee cross-validation.
    knee_nclients: int = 8
    #: Default tenant count for scenarios and the CLI.
    default_tenants: int = 4
    #: Batched admission and SFQ service (NumPy array pipeline).  The
    #: scalar per-op loops are byte-identical in every metric and kept
    #: permanently as the explicit opt-out reference path for the
    #: identity tests (DESIGN.md section 9); never the default.
    vectorized: bool = True


@dataclass(frozen=True)
class BenchConfig:
    """Benchmark-runner defaults: the figures' canonical seeds."""

    fig6_seed: int = 42
    fig7_seed: int = 24
    fig8_seed: int = 99
    fig9_seed: int = 3
    #: fig10 sweeps are seedless (deterministic builds).
    fig10_seed: int = 0
    macro_seed: int = 42
    traffic_seed: int = 7
    cluster_seed: int = 77

    def canonical_seeds(self) -> dict[str, int]:
        """``experiment -> seed`` mapping, as the runner consumes it."""
        return {
            "fig6": self.fig6_seed,
            "fig7": self.fig7_seed,
            "fig8": self.fig8_seed,
            "fig9": self.fig9_seed,
            "fig10": self.fig10_seed,
            "macro": self.macro_seed,
            "traffic": self.traffic_seed,
            "cluster": self.cluster_seed,
        }


@dataclass(frozen=True)
class FaultConfig:
    """Chaos/fault-injection defaults (:mod:`repro.faults`)."""

    #: Default scenario seed (same seed => identical recovery).
    default_seed: int = 1234
    #: Disk fails this fraction of the way into a chaos-under-load run.
    fail_at_fraction: float = 1 / 3
    #: Failed disk is replaced (rebuilt) at this fraction.
    replace_at_fraction: float = 2 / 3
    #: Testbed size for chaos-under-load.
    underload_blocks_per_disk: int = 65_536
    #: CPs driven by a chaos-under-load run.
    underload_n_cps: int = 30


@dataclass(frozen=True)
class ObsConfig:
    """Structured-tracer defaults (:mod:`repro.obs`)."""

    #: Ring-buffer capacity in records (spans + counter samples); the
    #: oldest records are evicted once full.
    ring_capacity: int = 65_536


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet-scale cluster defaults (:mod:`repro.cluster`)."""

    #: Aggregates (shards) in the default cluster.
    default_shards: int = 8
    #: Tenant volumes placed per shard in the default fleet.
    default_tenants_per_shard: int = 3
    #: Shard testbed size (small: a cluster builds many of these).
    blocks_per_disk: int = 4096
    #: RAID groups per shard aggregate.
    groups_per_shard: int = 2
    #: Data disks per RAID group.
    ndata: int = 4
    #: Traffic CPs driven per scheduling epoch.
    epoch_cps: int = 6
    #: Scheduling rounds (stats refresh between rounds).
    rounds: int = 2
    #: QoS headroom: total committed offered load admitted per shard,
    #: as a multiple of the shard's calibrated capacity.
    headroom_fraction: float = 3.0
    #: Fraction of a shard's free blocks the capacity filter may fill.
    capacity_slack: float = 0.9
    #: Weigher multipliers (Cinder-style weighted sum).
    #: Kept below the headroom multiplier on purpose: min–max
    #: normalization stretches even trivial free-space differences to
    #: [0, 1], so an evenly filled fleet would otherwise let noise-level
    #: block deltas outvote large committed-load differences.
    free_space_weight: float = 0.5
    aa_pressure_weight: float = 0.5
    #: Multiplier for the committed-load (provisioned QoS) weigher —
    #: the dominant signal until measured stats exist.
    headroom_weight: float = 2.0
    tail_latency_weight: float = 1.0


@dataclass(frozen=True)
class SimConfig:
    """All tunables, one immutable object.

    ``SimConfig.default()`` returns a shared default instance; derive
    variants with :func:`dataclasses.replace`.
    """

    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    bench: BenchConfig = field(default_factory=BenchConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    _default: ClassVar["SimConfig | None"] = None

    @classmethod
    def default(cls) -> "SimConfig":
        """The shared default configuration (created once)."""
        if cls._default is None:
            cls._default = cls()
        return cls._default
