"""Typed, frozen configuration for the whole simulator.

Tunables used to be scattered across keyword defaults (CP threshold
fractions on :class:`~repro.fs.filesystem.WaflSim`, HBPS tuning on the
cache constructors, QoS defaults in :mod:`repro.traffic`, canonical
seeds in :mod:`repro.bench.runner`, chaos defaults in
:mod:`repro.faults`).  This module consolidates them into immutable
dataclasses with one entry point, :meth:`SimConfig.default`; callers
override fields with :func:`dataclasses.replace`:

    from dataclasses import replace
    from repro.common.config import SimConfig

    cfg = SimConfig.default()
    cfg = replace(cfg, allocator=replace(cfg.allocator,
                                         threshold_fraction=0.1))

The config object is the only way to set these tunables; the legacy
loose keyword arguments on the builders were removed after their
one-release deprecation window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from .constants import (
    HBPS_BIN_WIDTH,
    HBPS_LIST_CAPACITY,
    RAID_AGNOSTIC_AA_BLOCKS,
    TETRIS_STRIPES,
    TOPAA_RAID_AWARE_ENTRIES,
)

__all__ = [
    "AllocatorConfig",
    "CacheConfig",
    "TrafficConfig",
    "BenchConfig",
    "FaultConfig",
    "ObsConfig",
    "ClusterConfig",
    "SimConfig",
    "TierSpec",
    "VolumeDecl",
    "AggregateSpec",
]

#: RAID levels a :class:`TierSpec` may declare, with the parity-device
#: count each implies ("mirror" pairs every data device with a copy, so
#: its parity count is resolved against ``ndata`` at build time;
#: "none" is the natively redundant object backend).
RAID_LEVELS = ("raid4", "raid_dp", "mirror", "none")

#: Media families a :class:`TierSpec` may declare (the
#: :class:`~repro.devices.base.MediaType` value strings, kept primitive
#: so specs never import above ``common``).
MEDIA_FAMILIES = ("hdd", "ssd", "smr", "object")

#: Declared workload hints the per-volume tier chooser understands
#: (see :mod:`repro.tiering`): random-overwrite OLTP, streaming
#: sequential churn, archival cold data, or no hint.
WORKLOAD_HINTS = ("mixed", "oltp", "sequential", "archive")


@dataclass(frozen=True)
class AllocatorConfig:
    """Write-allocator tunables (paper section 3.3.1)."""

    #: Fragmentation cutoff: a RAID group whose best AA score is below
    #: ``threshold_fraction * aa_blocks`` is skipped while any other
    #: group remains above it.  0 disables the cutoff.
    threshold_fraction: float = 0.0
    #: Stripes taken from each group per round-robin turn (one tetris).
    stripes_per_round: int = TETRIS_STRIPES
    #: Consecutive full AAs a source may propose before the allocator
    #: declares the space dry (score-blind baselines only).
    max_full_aa_retries: int = 128
    #: Legacy per-chunk bitmap/score flushing in the write allocators.
    #: The default batches each AA's taken span into one bitmap scatter
    #: and one score delta per synchronization point (AA switch,
    #: release, CP boundary), which is byte-identical in every metric
    #: (DESIGN.md section 9).  Kept permanently as the scalar reference
    #: pipeline for the identity tests; never the default.
    scalar_bitmap_flush: bool = False


@dataclass(frozen=True)
class CacheConfig:
    """AA-cache tunables (paper sections 3.3.1-3.3.2, 3.4)."""

    #: HBPS histogram bin width (paper default: 1K-wide bins).
    hbps_bin_width: int = HBPS_BIN_WIDTH
    #: HBPS best-AA list capacity (paper default: 1,000 entries).
    hbps_list_capacity: int = HBPS_LIST_CAPACITY
    #: Entries persisted per TopAA page for the RAID-aware cache.
    topaa_raid_aware_entries: int = TOPAA_RAID_AWARE_ENTRIES


@dataclass(frozen=True)
class TrafficConfig:
    """Multi-tenant traffic-engine defaults (QoS substrate)."""

    #: CP pipeline parallelism: the paper's midrange server.
    cores: int = 20
    #: Ops per CP the engine targets when deriving ``cp_interval_us``
    #: (matches the figure benchmarks' batch sizes).
    target_ops_per_cp: int = 2048
    #: Closed-loop clients for the knee cross-validation.
    knee_nclients: int = 8
    #: Default tenant count for scenarios and the CLI.
    default_tenants: int = 4
    #: Batched admission and SFQ service (NumPy array pipeline).  The
    #: scalar per-op loops are byte-identical in every metric and kept
    #: permanently as the explicit opt-out reference path for the
    #: identity tests (DESIGN.md section 9); never the default.
    vectorized: bool = True


@dataclass(frozen=True)
class TierSpec:
    """One tier of a heterogeneous aggregate: a media family plus the
    RAID geometry its groups share (primitives only, like every spec in
    this module, so tier specs pickle and serialize trivially)."""

    #: Unique tier name within the aggregate ("fast", "capacity", ...).
    label: str
    media: str = "ssd"
    #: RAID level of every group in this tier (see :data:`RAID_LEVELS`).
    raid: str = "raid4"
    n_groups: int = 1
    ndata: int = 6
    blocks_per_disk: int = 262144
    #: Stripes per AA; 0 selects the media-appropriate default.
    stripes_per_aa: int = 0
    #: Store AZCS checksum blocks (SMR tiers; paper section 3.2.4).
    azcs: bool = False
    #: Object tiers only: linear VBN-space size and AA size in blocks
    #: (0 selects the RAID-agnostic default).
    nblocks: int = 0
    blocks_per_aa: int = RAID_AGNOSTIC_AA_BLOCKS
    #: SSD tuning overrides (0/0.0 = the device model's defaults).
    erase_block_blocks: int = 0
    program_us_per_block: float = 0.0
    #: SMR zone-size override (0 = the device model's default).
    zone_blocks: int = 0
    #: SMR zone-rewrite penalty override (0.0 = the model's default).
    rewrite_penalty_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("a tier needs a non-empty label")
        if self.media not in MEDIA_FAMILIES:
            raise ValueError(
                f"unknown media {self.media!r}; pick one of {MEDIA_FAMILIES}"
            )
        if self.raid not in RAID_LEVELS:
            raise ValueError(
                f"unknown RAID level {self.raid!r}; pick one of {RAID_LEVELS}"
            )
        if (self.media == "object") != (self.raid == "none"):
            raise ValueError(
                "object tiers (and only object tiers) are natively "
                "redundant: use media='object' with raid='none'"
            )
        if self.media == "object":
            if self.nblocks <= 0:
                raise ValueError("an object tier needs nblocks > 0")
        elif self.n_groups < 1 or self.ndata < 1:
            raise ValueError("a RAID tier needs n_groups >= 1 and ndata >= 1")

    @property
    def nparity(self) -> int:
        """Parity (or mirror) devices per group this level implies."""
        if self.raid == "raid_dp":
            return 2
        if self.raid == "mirror":
            return self.ndata
        return 0 if self.raid == "none" else 1

    @property
    def physical_blocks(self) -> int:
        """Data blocks this tier contributes to the aggregate."""
        if self.media == "object":
            return self.nblocks
        return self.n_groups * self.ndata * self.blocks_per_disk


@dataclass(frozen=True)
class VolumeDecl:
    """One FlexVol declaration inside an :class:`AggregateSpec`."""

    name: str
    logical_blocks: int
    #: Virtual VBN-space size; 0 derives the FlexVol default (1.5x).
    virtual_blocks: int = 0
    #: Volume AA size; 0 selects the RAID-agnostic default.
    blocks_per_aa: int = 0
    #: Declared workload hint for the tier chooser
    #: (see :data:`WORKLOAD_HINTS`).
    workload: str = "mixed"

    def __post_init__(self) -> None:
        if self.logical_blocks <= 0:
            raise ValueError("logical_blocks must be positive")
        if self.workload not in WORKLOAD_HINTS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"pick one of {WORKLOAD_HINTS}"
            )


@dataclass(frozen=True)
class AggregateSpec:
    """Declarative description of one aggregate: its tiers, AA-selection
    policies, and volumes — the single input of
    :meth:`repro.fs.filesystem.WaflSim.build`."""

    tiers: tuple[TierSpec, ...]
    volumes: tuple[VolumeDecl, ...] = ()
    #: Store-side AA selection policy (a
    #: :class:`~repro.fs.aggregate.PolicyKind` value string).
    policy: str = "cache"
    #: Volume-side AA selection policy.
    vol_policy: str = "cache"

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers", tuple(self.tiers))
        object.__setattr__(self, "volumes", tuple(self.volumes))
        if not self.tiers:
            raise ValueError("an aggregate needs at least one tier")
        labels = [t.label for t in self.tiers]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate tier labels in {labels}")
        names = [v.name for v in self.volumes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate volume names in {names}")

    @property
    def physical_blocks(self) -> int:
        return sum(t.physical_blocks for t in self.tiers)


@dataclass(frozen=True)
class BenchConfig:
    """Benchmark-runner defaults: the figures' canonical seeds."""

    fig6_seed: int = 42
    fig7_seed: int = 24
    fig8_seed: int = 99
    fig9_seed: int = 3
    #: fig10 sweeps are seedless (deterministic builds).
    fig10_seed: int = 0
    macro_seed: int = 42
    traffic_seed: int = 7
    cluster_seed: int = 77
    tier_seed: int = 55

    def canonical_seeds(self) -> dict[str, int]:
        """``experiment -> seed`` mapping, as the runner consumes it."""
        return {
            "fig6": self.fig6_seed,
            "fig7": self.fig7_seed,
            "fig8": self.fig8_seed,
            "fig9": self.fig9_seed,
            "fig10": self.fig10_seed,
            "macro": self.macro_seed,
            "traffic": self.traffic_seed,
            "cluster": self.cluster_seed,
            "tier": self.tier_seed,
        }


@dataclass(frozen=True)
class FaultConfig:
    """Chaos/fault-injection defaults (:mod:`repro.faults`)."""

    #: Default scenario seed (same seed => identical recovery).
    default_seed: int = 1234
    #: Disk fails this fraction of the way into a chaos-under-load run.
    fail_at_fraction: float = 1 / 3
    #: Failed disk is replaced (rebuilt) at this fraction.
    replace_at_fraction: float = 2 / 3
    #: Testbed size for chaos-under-load.
    underload_blocks_per_disk: int = 65_536
    #: CPs driven by a chaos-under-load run.
    underload_n_cps: int = 30


@dataclass(frozen=True)
class ObsConfig:
    """Structured-tracer defaults (:mod:`repro.obs`)."""

    #: Ring-buffer capacity in records (spans + counter samples); the
    #: oldest records are evicted once full.
    ring_capacity: int = 65_536


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet-scale cluster defaults (:mod:`repro.cluster`)."""

    #: Aggregates (shards) in the default cluster.
    default_shards: int = 8
    #: Tenant volumes placed per shard in the default fleet.
    default_tenants_per_shard: int = 3
    #: Shard testbed size (small: a cluster builds many of these).
    blocks_per_disk: int = 4096
    #: RAID groups per shard aggregate.
    groups_per_shard: int = 2
    #: Data disks per RAID group.
    ndata: int = 4
    #: Traffic CPs driven per scheduling epoch.
    epoch_cps: int = 6
    #: Scheduling rounds (stats refresh between rounds).
    rounds: int = 2
    #: QoS headroom: total committed offered load admitted per shard,
    #: as a multiple of the shard's calibrated capacity.
    headroom_fraction: float = 3.0
    #: Fraction of a shard's free blocks the capacity filter may fill.
    capacity_slack: float = 0.9
    #: Weigher multipliers (Cinder-style weighted sum).
    #: Kept below the headroom multiplier on purpose: min–max
    #: normalization stretches even trivial free-space differences to
    #: [0, 1], so an evenly filled fleet would otherwise let noise-level
    #: block deltas outvote large committed-load differences.
    free_space_weight: float = 0.5
    aa_pressure_weight: float = 0.5
    #: Multiplier for the committed-load (provisioned QoS) weigher —
    #: the dominant signal until measured stats exist.
    headroom_weight: float = 2.0
    tail_latency_weight: float = 1.0


@dataclass(frozen=True)
class SimConfig:
    """All tunables, one immutable object.

    ``SimConfig.default()`` returns a shared default instance; derive
    variants with :func:`dataclasses.replace`.
    """

    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    bench: BenchConfig = field(default_factory=BenchConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    _default: ClassVar["SimConfig | None"] = None

    @classmethod
    def default(cls) -> "SimConfig":
        """The shared default configuration (created once)."""
        if cls._default is None:
            cls._default = cls()
        return cls._default
