"""Unit helpers for sizes and times.

The simulator internally measures storage in 4 KiB blocks and time in
microseconds.  These helpers keep conversions explicit at API
boundaries and in benchmark output.
"""

from __future__ import annotations

from .constants import BLOCK_SIZE

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB


def bytes_to_blocks(nbytes: int) -> int:
    """Convert a byte count to whole 4 KiB blocks (must divide evenly)."""
    if nbytes % BLOCK_SIZE:
        raise ValueError(f"{nbytes} bytes is not a multiple of {BLOCK_SIZE}")
    return nbytes // BLOCK_SIZE


def blocks_to_bytes(nblocks: int) -> int:
    """Convert a 4 KiB block count to bytes."""
    return nblocks * BLOCK_SIZE


def gib_to_blocks(gib: float) -> int:
    """Convert GiB to 4 KiB blocks, rounding down."""
    return int(gib * GIB) // BLOCK_SIZE


def blocks_to_gib(nblocks: int) -> float:
    """Convert 4 KiB blocks to GiB."""
    return nblocks * BLOCK_SIZE / GIB


def us_to_ms(us: float) -> float:
    """Microseconds to milliseconds."""
    return us / 1000.0


def us_to_s(us: float) -> float:
    """Microseconds to seconds."""
    return us / 1_000_000.0


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count (e.g. ``1.5 GiB``)."""
    for unit, div in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if nbytes >= div:
            return f"{nbytes / div:.2f} {unit}"
    return f"{nbytes:.0f} B"


def fmt_count(n: float) -> str:
    """Human-readable count with k/M/G suffix (e.g. ``256k``)."""
    for suffix, div in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if abs(n) >= div:
            return f"{n / div:.3g}{suffix}"
    return f"{n:.3g}"
