"""Modelling constants shared across the reproduction.

Every constant here is traceable to the paper ("Efficient Search for Free
Blocks in the WAFL File System", ICPP 2018) or to a documented
substitution in DESIGN.md.  Values that the paper leaves configurable
(erase-block size, shingle-zone size) are defaults and can be overridden
through the relevant config dataclasses.
"""

from __future__ import annotations

#: WAFL addresses its storage in 4 KiB blocks (paper section 2).
BLOCK_SIZE: int = 4096

#: Bits per 4 KiB bitmap-metafile block: 4096 bytes * 8 = 32,768 bits,
#: one bit per VBN (paper section 3.2.1).
BITS_PER_BITMAP_BLOCK: int = BLOCK_SIZE * 8

#: Default allocation-area size for RAID groups of HDDs, in stripes
#: (paper section 3.2.1: "an AA size of 4k stripes works well for HDDs").
DEFAULT_RAID_AA_STRIPES: int = 4096

#: Default allocation-area size in VBNs when no RAID geometry applies
#: (paper section 3.2.1: 32k consecutive VBNs, matching the alignment of
#: bitmap metafile blocks).
RAID_AGNOSTIC_AA_BLOCKS: int = BITS_PER_BITMAP_BLOCK

#: A tetris is the unit of write I/O sent from WAFL to a RAID group,
#: composed of 64 consecutive stripes (paper section 4.2).
TETRIS_STRIPES: int = 64

#: HBPS histogram bin width in score units (paper section 3.3.2: "The AA
#: score space is divided into bins covering score ranges of 1K").
HBPS_BIN_WIDTH: int = 1024

#: HBPS list-page capacity (paper section 3.3.2: "This second page
#: stores 1,000 AAs that fall into the top score ranges").
HBPS_LIST_CAPACITY: int = 1000

#: Entries persisted per 4 KiB TopAA block for a RAID-aware AA cache
#: (paper section 3.4: "one 4KiB block ... fills with the 512 best AAs
#: and their scores"; 512 entries * 8 bytes = 4 KiB).
TOPAA_RAID_AWARE_ENTRIES: int = 512

#: Blocks per AZCS checksum region: 63 data blocks share 1 checksum
#: block (paper section 3.2.4).
AZCS_REGION_BLOCKS: int = 64
AZCS_DATA_BLOCKS: int = AZCS_REGION_BLOCKS - 1

#: Default SSD erase-block size in 4 KiB blocks (2 MiB).  The paper keeps
#: the vendor value private; 2 MiB is a typical enterprise NAND erase
#: block and is configurable via :class:`repro.devices.ssd.SSDConfig`.
DEFAULT_ERASE_BLOCK_BLOCKS: int = 512

#: Default SMR shingle-zone size in 4 KiB blocks (256 MiB), the common
#: zone size for drive-managed SMR drives; configurable via
#: :class:`repro.devices.smr.SMRConfig`.
DEFAULT_SMR_ZONE_BLOCKS: int = 65536

#: Default fraction of an SSD's raw capacity hidden for FTL
#: over-provisioning (paper section 3.2.2 cites "up to 30%" for
#: enterprise drives; we default lower because AA sizing is what lets
#: NetApp "ship SSDs ... with significantly lower OP").
DEFAULT_SSD_OVERPROVISIONING: float = 0.07
