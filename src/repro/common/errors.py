"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single handler while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class BitmapError(ReproError):
    """Inconsistent bitmap operation (double allocate / double free)."""


class AllocationError(ReproError):
    """The write allocator could not satisfy a request."""


class OutOfSpaceError(AllocationError):
    """No free blocks remain in the targeted VBN space."""


class GeometryError(ReproError):
    """Invalid RAID or device geometry configuration."""


class CacheError(ReproError):
    """Invalid operation on an allocation-area cache."""


class SerializationError(ReproError):
    """TopAA metafile or HBPS page (de)serialization failure."""


class MountError(ReproError):
    """Failure while mounting an aggregate or FlexVol."""


class FaultError(ReproError):
    """Base class for injected-fault I/O failures (:mod:`repro.faults`)."""


class TransientIOError(FaultError):
    """A read failed transiently; retrying (with backoff) may succeed."""


class MediaError(FaultError):
    """Media damage that RAID could not reconstruct (paper section 3.4:
    the case that escalates to WAFL Iron)."""


class DegradedError(MediaError):
    """A RAID group has more failed devices than its parity budget can
    reconstruct; reads through the missing data are impossible."""


class AuditError(ReproError):
    """The runtime invariant auditor found a cross-layer inconsistency
    (see :mod:`repro.analysis.auditor`)."""


class CrashError(ReproError):
    """A simulated crash was injected at a registered crash point
    (a CP span edge — see :mod:`repro.crash.registry`).  Everything the
    crashed consistency point did in memory is lost; recovery restores
    the last committed CP image."""


class TornWriteError(SerializationError):
    """A persisted metadata page failed verification because the crash
    landed mid-write: only a leading run of device sectors carries the
    new image, the tail still holds older bytes (or nothing).  Detected
    by the page checksum at recovery; the torn page is discarded and
    the committed copy used instead."""


class RecoveryExhaustedError(TransientIOError):
    """The bounded retry budget shared by the recovery pipeline (mount
    page reads + background rebuild) was exhausted before the transient
    fault cleared.  Subclasses :class:`TransientIOError` because the
    last failure was transient — it just persisted past the budget."""


class PlacementError(ReproError):
    """The cluster volume scheduler found no aggregate that passes every
    placement filter (:mod:`repro.cluster.scheduler`)."""


class TieringError(ReproError):
    """A heterogeneous-tier operation failed: unknown tier label,
    unmigratable volume, or a tier-migration block-conservation
    violation (:mod:`repro.tiering`)."""
