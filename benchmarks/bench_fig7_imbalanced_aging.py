"""Figure 7 (section 4.2): disk usage across differently aged RAID groups.

An all-HDD aggregate with four RAID groups runs an OLTP benchmark at a
fixed cumulative load.  RG0 and RG1 were aged "by overwriting and
freeing blocks until a random 50% of its blocks were used"; RG2 and
RG3 are fresh.  The paper's two findings:

1. blocks are evenly distributed across all disks with the same
   fragmentation level;
2. more blocks are written to the newer, emptier RAID groups, while the
   aged groups see a marginally *higher* tetris rate per block written
   (their free space is scattered across more partial stripes).

Run with ``pytest benchmarks/bench_fig7_imbalanced_aging.py
--benchmark-only -s``; tables land in benchmarks/results/fig7.txt.  The
experiment logic lives in :mod:`repro.bench.experiments` (also
reachable via ``python -m repro fig7``).
"""

from __future__ import annotations

from repro.bench import emit
from repro.bench.experiments import fig7_tables, run_fig7


def test_fig7(benchmark):
    res = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    for table in fig7_tables(res):
        emit("fig7", table)

    aged, fresh = res.aged(), res.fresh()

    # Claim 1: blocks even across disks with the same fragmentation.
    for gi, per in enumerate(res.blocks_per_disk):
        per = per.astype(float)
        assert per.max() / max(per.min(), 1) < 1.1, f"RG{gi} disks uneven: {per}"

    # Claim 2: more blocks to the fresh groups.
    assert res.blocks[fresh].mean() > 1.2 * res.blocks[aged].mean()

    # Claim 3: aged groups write fewer blocks per tetris (their tetrises
    # are less efficient), i.e. a marginally higher tetris rate per
    # block written.
    aged_eff = res.blocks[aged].sum() / res.tetrises[aged].sum()
    fresh_eff = res.blocks[fresh].sum() / res.tetrises[fresh].sum()
    assert aged_eff < fresh_eff

    # Claim 4: aged groups suffer more partial stripes.
    aged_partial = res.partials[aged].sum() / res.stripes[aged].sum()
    fresh_partial = res.partials[fresh].sum() / max(res.stripes[fresh].sum(), 1)
    assert aged_partial > fresh_partial
