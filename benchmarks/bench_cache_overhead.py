"""Section 4.1.2's cache-overhead claim, plus HBPS micro-benchmarks.

"Code-path profiles show that under heavy I/O load, only about 0.002%
of the total CPU cycles was spent maintaining each of the RAID-aware
and RAID-agnostic AA caches."  We measure the modeled CPU attributed
to cache maintenance as a fraction of total modeled WAFL CPU during
the Figure 6 workload, and benchmark the raw data-structure operations
(HBPS insert/update/pop at the paper's one-million-AA scale, heap
rebalance) with pytest-benchmark.

Run with ``pytest benchmarks/bench_cache_overhead.py --benchmark-only -s``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import build_aged_ssd_sim, emit
from repro.core import HBPS, RAIDAwareAACache
from repro.workloads import RandomOverwriteWorkload

MILLION = 1_000_000


def test_cache_maintenance_fraction(benchmark):
    def run():
        sim = build_aged_ssd_sim(seed=42)
        wl = RandomOverwriteWorkload(sim, ops_per_cp=8192, blocks_per_op=2, seed=7)
        sim.run(wl, 30)
        total = sim.metrics.total_cpu_us
        cache = sim.engine.cache_maintenance_us
        return cache / total

    frac = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "cache_overhead",
        f"AA-cache maintenance CPU fraction under heavy random overwrites: "
        f"{frac:.5%} (paper: ~0.002% per cache; ours covers all caches)",
    )
    # The claim to preserve: maintenance cost is negligible — orders of
    # magnitude below 1% of the WAFL code path.
    assert frac < 0.001


@pytest.fixture(scope="module")
def million_hbps() -> tuple[HBPS, np.ndarray]:
    rng = np.random.default_rng(0)
    scores = rng.integers(0, 32769, size=MILLION)
    h = HBPS(32768)
    h.rebuild((int(i), int(s)) for i, s in enumerate(scores))
    return h, scores


def test_hbps_update_rate(benchmark, million_hbps):
    """Constant-time bin moves on a million-AA HBPS (section 3.3.2)."""
    h, scores = million_hbps
    rng = np.random.default_rng(1)
    items = rng.integers(0, MILLION, size=4096)
    news = rng.integers(0, 32769, size=4096)
    local = scores.copy()

    def run():
        for i, n in zip(items.tolist(), news.tolist()):
            if h.is_listed(i):
                continue
            h.update(i, int(local[i]), int(n))
            local[i] = n

    benchmark(run)
    h.check_invariants()


def test_hbps_pop_insert_cycle(benchmark, million_hbps):
    """Pop-best + reinsert cycle (the per-CP allocator interaction)."""
    h, scores = million_hbps

    def run():
        popped = h.pop_best()
        if popped is None:
            return
        item, b = popped
        lo, _hi = h.bin_bounds(b)
        h.insert(item, lo)

    benchmark(run)


def test_hbps_million_rebuild(benchmark):
    """The background replenish scan at the paper's 128 TiB-FlexVol
    scale: one million AAs rebuilt into two pages."""
    rng = np.random.default_rng(2)
    scores = rng.integers(0, 32769, size=MILLION)

    def run():
        h = HBPS(32768)
        h.rebuild((int(i), int(s)) for i, s in enumerate(scores))
        return h

    h = benchmark.pedantic(run, rounds=1, iterations=1)
    assert h.total_count == MILLION
    assert h.memory_bytes == 8192


def test_heap_million_build(benchmark):
    """Full max-heap build over one million AAs (the RAID-aware cache
    boot path without TopAA)."""
    rng = np.random.default_rng(3)
    scores = rng.integers(0, 32769, size=MILLION)

    def run():
        return RAIDAwareAACache(MILLION, scores)

    cache = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cache.fully_populated
    # Paper: ~1 MiB of memory per million default-sized AAs.
    assert cache.memory_bytes == 8 * MILLION


def test_memory_comparison(benchmark):
    """The section 3.3.2 memory argument: HBPS stays at two pages while
    the heap grows linearly."""
    def run():
        rows = []
        for n in (1000, 100_000, MILLION):
            heap_bytes = RAIDAwareAACache(n, np.zeros(n, dtype=np.int64)).memory_bytes
            from repro.core import RAIDAgnosticAACache

            hbps_bytes = RAIDAgnosticAACache(n, 32768).memory_bytes
            rows.append((n, heap_bytes, hbps_bytes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.bench import fmt_table

    emit(
        "cache_overhead",
        fmt_table(
            ["AAs tracked", "max-heap bytes", "HBPS bytes"],
            [list(r) for r in rows],
            title="Memory: RAID-aware heap vs RAID-agnostic HBPS (section 3.3.2)",
        ),
    )
    for n, heap_bytes, hbps_bytes in rows:
        assert hbps_bytes == 8192
        assert heap_bytes == 8 * n
