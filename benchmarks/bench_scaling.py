"""Simulator scaling: the reproduction's own performance envelope.

The HPC guides' rule — measure before claiming — applied to this
library: consistency-point throughput (client ops simulated per second
of wall time) as the aggregate grows, and the vectorized bitmap
primitives underpinning it.  These benches exist so regressions in the
NumPy hot paths (popcounts, free-block searches, scatter bit updates)
are caught by the same suite that regenerates the figures.

Run with ``pytest benchmarks/bench_scaling.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import Bitmap
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import WaflSim
from repro.workloads import RandomOverwriteWorkload, fill_volumes

MILLION = 1_000_000


@pytest.mark.parametrize("blocks_per_disk", [65_536, 262_144])
def test_cp_throughput(benchmark, blocks_per_disk):
    """Steady-state CP execution rate on a filled SSD aggregate."""
    phys = 4 * blocks_per_disk
    sim = WaflSim.build(
        AggregateSpec(
            tiers=(TierSpec(label="ssd", media="ssd", ndata=4,
                            blocks_per_disk=blocks_per_disk),),
            volumes=(VolumeDecl("lun", logical_blocks=phys // 2),),
        ),
        seed=1,
    )
    fill_volumes(sim, ops_per_cp=16384)
    wl = RandomOverwriteWorkload(sim, ops_per_cp=8192, blocks_per_op=2, seed=2)
    it = iter(wl)

    def one_cp():
        sim.engine.run_cp(next(it))

    benchmark(one_cp)
    # A CP of 8192 ops must simulate fast enough for the figure benches.
    assert benchmark.stats["mean"] < 1.0


def test_bitmap_popcount_million(benchmark):
    """Scoring a million-AA bitmap in one vectorized pass."""
    bm = Bitmap(32 * MILLION)
    rng = np.random.default_rng(0)
    bm.set_range(0, 16 * MILLION)

    def run():
        return bm.counts_per_chunk(32)

    counts = benchmark(run)
    assert counts.sum() == bm.allocated_count


def test_bitmap_scatter_updates(benchmark):
    """Random scatter allocate/free batches (the CP write path)."""
    bm = Bitmap(4 * MILLION)
    rng = np.random.default_rng(1)
    batch = rng.choice(4 * MILLION, size=16384, replace=False)

    def run():
        bm.allocate(batch)
        bm.free(batch)

    benchmark(run)
    assert bm.allocated_count == 0


def test_free_search(benchmark):
    """Free-VBN search within one 32k-block AA at 50% density."""
    bm = Bitmap(32768 * 16)
    bm.allocate(np.arange(0, bm.nblocks, 2))

    def run():
        return bm.free_in_range(0, 32768)

    free = benchmark(run)
    assert free.size == 16384
