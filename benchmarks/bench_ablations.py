"""Ablations of the design decisions DESIGN.md section 5 calls out.

1. Selection policy: the paper's caches vs random vs first-fit scan.
2. HBPS bin width: the 3.125% error-margin trade-off (section 3.3.2).
3. HBPS list capacity: replenish-scan frequency vs memory.
4. Fragmentation cutoff threshold for skipping RAID groups (3.3.1).
5. TopAA seed size: how long seeded AAs sustain allocation (3.4).

Run with ``pytest benchmarks/bench_ablations.py --benchmark-only -s``;
tables land in benchmarks/results/ablations.txt.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bench import build_aged_ssd_sim, emit, fmt_table, measure_random_overwrite
from repro.common.config import SimConfig
from repro.core import (
    HBPS,
    RAIDAgnosticAACache,
    RAIDAwareAACache,
    seed_heap_cache,
    serialize_heap_seed,
)
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import PolicyKind, WaflSim
from repro.workloads import RandomOverwriteWorkload, fill_volumes, reset_measurement_state


def test_ablation_selection_policy(benchmark):
    """Cache vs random vs linear-scan selection (paper section 4.1 plus
    our extra first-fit baseline)."""

    def run():
        out = {}
        for label, policy in [
            ("AA cache", PolicyKind.CACHE),
            ("random", PolicyKind.RANDOM),
            ("first-fit scan", PolicyKind.LINEAR_SCAN),
        ]:
            sim = build_aged_ssd_sim(
                aggregate_policy=policy, vol_policy=policy, seed=42
            )
            # Half the data is cold (never overwritten): realistic
            # LUN populations.  Under *uniform* churn a first-fit
            # cursor behaves like an LFS sweep and matches the cache;
            # cold regions are what make score-blind scans pay for
            # consulting nearly-full AAs.
            out[label] = measure_random_overwrite(
                sim, label, n_cps=25, working_set_fraction=0.5
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablations",
        fmt_table(
            ["policy", "selected AA free", "SSD write amp", "service us/op",
             "peak ops/s"],
            [
                [r.label, r.agg_selected_free, r.write_amplification,
                 r.cpu_us_per_op + r.device_us_per_op, r.capacity_ops]
                for r in results.values()
            ],
            title="Ablation 1: AA selection policy",
        ),
    )
    emit(
        "ablations",
        "Finding: under *uniform* random churn, a first-fit cursor matches the\n"
        "AA cache — the sweep returns to regions only after churn has emptied\n"
        "them (LFS-style threading).  The cache's advantage is robustness: it\n"
        "needs no favourable churn pattern, and random selection (the paper's\n"
        "actual no-cache behaviour) is strictly worse on every metric.",
    )
    cache = results["AA cache"]
    rand = results["random"]
    assert cache.agg_selected_free > rand.agg_selected_free
    assert cache.capacity_ops > rand.capacity_ops
    assert cache.write_amplification < rand.write_amplification


def test_ablation_hbps_bin_width(benchmark):
    """Error margin vs bin width: popping must stay within one bin of
    the true max, so regret scales with bin width (section 3.3.2)."""

    def run():
        rng = np.random.default_rng(0)
        scores = rng.integers(0, 32769, size=200_000)
        rows = []
        for bin_width in (256, 1024, 4096):
            h = HBPS(32768, bin_width=bin_width, list_capacity=1000)
            h.rebuild((int(i), int(s)) for i, s in enumerate(scores))
            remaining = scores.copy()
            alive = np.ones(scores.size, dtype=bool)
            regrets = []
            for _ in range(500):
                popped = h.pop_best()
                if popped is None:
                    break
                item, _b = popped
                true_max = remaining[alive].max()
                regrets.append(int(true_max - remaining[item]))
                alive[item] = False
            rows.append(
                [bin_width, bin_width / 32768, max(regrets), float(np.mean(regrets))]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablations",
        fmt_table(
            ["bin width", "guaranteed margin", "max regret", "mean regret"],
            rows,
            title="Ablation 2: HBPS bin width vs selection regret "
            "(paper guarantees 1024/32768 = 3.125%)",
        ),
    )
    for bin_width, _margin, max_regret, _mean in rows:
        assert max_regret < bin_width


def test_ablation_hbps_list_capacity(benchmark):
    """Smaller list pages need more replenish scans under pop-heavy
    load; the paper's 1,000-entry page makes them rare."""

    def run():
        rng = np.random.default_rng(1)
        scores = rng.integers(0, 32769, size=100_000)
        rows = []
        for capacity in (50, 200, 1000):
            cache = RAIDAgnosticAACache(scores.size, 32768, scores,
                                        list_capacity=capacity)
            replenishes = 0
            pops = 0
            for _ in range(3000):
                aa = cache.pop_best()
                if aa is None:
                    cache.replenish(scores)
                    replenishes += 1
                    continue
                pops += 1
                # Return at a mid score so it does not immediately
                # requalify for the top bins.
                cache.apply_changes([(aa, int(scores[aa]), 15000)])
                scores[aa] = 15000
            rows.append([capacity, pops, replenishes])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablations",
        fmt_table(
            ["list capacity", "pops served", "replenish scans"],
            rows,
            title="Ablation 3: HBPS list capacity vs replenish frequency",
        ),
    )
    # Larger capacity -> no more (and generally fewer) replenishes.
    assert rows[0][2] >= rows[-1][2]


def test_ablation_fragmentation_threshold(benchmark):
    """Section 3.3.1's cutoff: skip heavily fragmented RAID groups while
    others have good AAs, trading spindles for stripe quality."""

    def run():
        out = {}
        for label, threshold in [("no cutoff", 0.0), ("cutoff at 30%", 0.30)]:
            spec = AggregateSpec(
                tiers=(TierSpec(label="ssd", media="ssd", n_groups=2,
                                ndata=4, blocks_per_disk=65536,
                                stripes_per_aa=2048),),
                volumes=(VolumeDecl("lun", logical_blocks=150_000),),
            )
            cfg = replace(
                SimConfig.default(),
                allocator=replace(
                    SimConfig.default().allocator,
                    threshold_fraction=threshold,
                ),
            )
            sim = WaflSim.build(spec, config=cfg, seed=5)
            # Statically fragment group 0 to ~15% free per AA.
            g = sim.store.groups[0]
            rng = np.random.default_rng(7)
            taken = rng.choice(
                g.topology.nblocks, size=int(g.topology.nblocks * 0.85), replace=False
            )
            g.metafile.allocate(np.sort(taken))
            g.metafile.drain_dirty()
            g.keeper.recompute(g.metafile.bitmap)
            g.adopt_cache(RAIDAwareAACache(g.topology.num_aas, g.keeper.scores))
            sim.store.rebind_allocators()
            sim.store.allocator.threshold_fraction = threshold
            fill_volumes(sim, ops_per_cp=16384, seed=6)
            reset_measurement_state(sim)
            res = measure_random_overwrite(sim, label, n_cps=20, seed=8)
            out[label] = (res, sim.metrics.full_stripe_fraction,
                          sim.store.allocator.threshold_skips)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablations",
        fmt_table(
            ["config", "full-stripe fraction", "service us/op", "group skips"],
            [
                [label, fsf, r.cpu_us_per_op + r.device_us_per_op, skips]
                for label, (r, fsf, skips) in results.items()
            ],
            title="Ablation 4: fragmentation cutoff threshold (one 85%-full group)",
        ),
    )
    no_cut, cut = results["no cutoff"], results["cutoff at 30%"]
    assert cut[2] > 0  # the cutoff actually skipped the bad group
    assert cut[1] >= no_cut[1]  # and improved stripe quality


def test_ablation_topaa_seed_size(benchmark):
    """How long the TopAA seed sustains allocation before the
    background rebuild must finish (section 3.4 stores 512 AAs)."""

    def run():
        rng = np.random.default_rng(2)
        scores = rng.integers(0, 32769, size=100_000)
        rows = []
        for entries in (64, 256, 512):
            blk = serialize_heap_seed(scores, max_entries=entries)
            cache = seed_heap_cache(scores.size, blk)
            pops = 0
            while cache.pop_best() is not None:
                pops += 1
            rows.append([entries, pops])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablations",
        fmt_table(
            ["TopAA entries", "AAs served before rebuild needed"],
            rows,
            title="Ablation 5: TopAA seed size (paper: 512 entries per block)",
        ),
    )
    assert [r[1] for r in rows] == [r[0] for r in rows]


def test_ablation_segment_cleaning(benchmark):
    """Section 3.3.1's defragmentation sketch: just-in-time cleaning of
    the cache's best AAs mints empty AAs cheaply and improves the write
    path on a fragmented aggregate."""
    from repro.core.segment_cleaner import clean_best_aas

    def run():
        out = {}
        for label, clean in [("no cleaning", False), ("clean 8 AAs/round", True)]:
            sim = build_aged_ssd_sim(
                n_groups=1, ndata=4, blocks_per_disk=131_072,
                fill_fraction=0.70, churn_factor=1.5, seed=77,
            )
            moved = 0
            for _ in range(4):
                res = measure_random_overwrite(sim, label, n_cps=5, seed=9)
                if clean:
                    rep = clean_best_aas(sim, 0, n_aas=8)
                    moved += rep.blocks_moved
            sel = sim.store.selected_aa_free_fractions()
            out[label] = (res, float(sel.mean()), moved)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablations",
        fmt_table(
            ["config", "selected AA free", "SSD write amp", "blocks moved"],
            [
                [label, sel, r.write_amplification, moved]
                for label, (r, sel, moved) in results.items()
            ],
            title="Ablation 6: just-in-time AA cleaning (section 3.3.1 sketch)",
        ),
    )
    base = results["no cleaning"]
    cleaned = results["clean 8 AAs/round"]
    # Cleaning mints emptier AAs for the allocator to select.
    assert cleaned[1] >= base[1]
    assert cleaned[2] > 0
