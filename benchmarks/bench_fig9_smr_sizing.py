"""Figure 9 (section 4.3): AA sizing on SMR drives with AZCS.

Sequential writes to an *unaged* file system on drive-managed SMR
drives, comparing the historical HDD AA sizing (4k stripes — not a
multiple of the 63-block AZCS data payload, so checksum regions
straddle AA boundaries) against the SMR sizing (larger than the
shingle zone and AZCS-aligned).  The paper measured a 7% increase in
drive throughput and an 11% reduction in latency, attributed to
"avoiding random checksum block writes" when switching AAs.

Run with ``pytest benchmarks/bench_fig9_smr_sizing.py --benchmark-only
-s``; tables land in benchmarks/results/fig9.txt.  The experiment
logic lives in :mod:`repro.bench.experiments` (also reachable via
``python -m repro fig9``).
"""

from __future__ import annotations

from repro.bench import CORES, NCLIENTS, emit
from repro.bench.experiments import FIG9_OFFERED, fig9_tables, run_fig9
from repro.sim import peak_throughput, system_curve


def test_fig9(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    small = results["HDD-sized AA (4k stripes)"]
    aligned = results["SMR AA (zone + AZCS aligned)"]

    for table in fig9_tables(results):
        emit("fig9", table)

    curves = {
        label: system_curve(r["cpu"], r["dev"], FIG9_OFFERED,
                            nclients=NCLIENTS, cores=CORES)
        for label, r in results.items()
    }

    tput_gain = aligned["drive_mbps"] / small["drive_mbps"] - 1
    # Latency compared at the highest offered load both configs sustain.
    pre_knee = [
        i
        for i, p in enumerate(curves["HDD-sized AA (4k stripes)"])
        if p.achieved_per_client == p.offered_per_client
    ]
    idx = pre_knee[-1] if pre_knee else 0
    lat_small = curves["HDD-sized AA (4k stripes)"][idx].latency_ms
    lat_aligned = curves["SMR AA (zone + AZCS aligned)"][idx].latency_ms
    lat_delta = lat_aligned / lat_small - 1
    emit(
        "fig9",
        f"Aligned-AA drive-throughput gain: {tput_gain:+.1%} (paper: +7%)\n"
        f"Latency change at {curves['HDD-sized AA (4k stripes)'][idx].offered_per_client:.0f} "
        f"ops/s/client: {lat_delta:+.1%} (paper: -11%)\n"
        f"Note: both configs share the CP-boundary checksum updates "
        f"({aligned['rewrites']} rewrites); only the misaligned config adds "
        f"AA-boundary rewrites ({small['rewrites'] - aligned['rewrites']} extra).",
    )

    # Paper shape: the misaligned AA forces random checksum-block
    # rewrites behind the shingle pointer when switching AAs; the
    # aligned AA eliminates that class entirely (the remaining rewrites
    # are CP-boundary checksum updates common to both configs).
    assert small["rewrites"] > aligned["rewrites"]
    assert tput_gain > 0.02
    assert lat_aligned <= lat_small
    pk_small = peak_throughput(curves["HDD-sized AA (4k stripes)"])
    pk_aligned = peak_throughput(curves["SMR AA (zone + AZCS aligned)"])
    assert pk_aligned.achieved_per_client >= pk_small.achieved_per_client
