"""Figure 6 (+ section 4.1 in-text results): AA cache benefit.

Regenerates the paper's latency-versus-achieved-throughput sweep for
8 KiB random overwrites on an aged all-SSD aggregate under four
configurations: both AA caches, FlexVol cache only, aggregate cache
only, and neither (the paper plots the first three; "neither" is our
added baseline).  Also reports the in-text quantities: mean free space
of selected AAs (61% vs 46% aggregate; 78% vs 61% FlexVol in the
paper), SSD write amplification (1.77 -> 1.46), and WAFL CPU per op
(309 -> 293 us/op).

Run with ``pytest benchmarks/bench_fig6_aa_cache.py --benchmark-only -s``;
tables are also written to benchmarks/results/fig6.txt.  The experiment
logic lives in :mod:`repro.bench.experiments` (also reachable via
``python -m repro fig6``).
"""

from __future__ import annotations

import pytest

from repro.bench import build_aged_ssd_sim, emit, measure_random_overwrite
from repro.bench.experiments import (
    FIG6_CONFIGS,
    FIG6_OFFERED,
    fig6_tables,
    run_fig6,
)


@pytest.fixture(scope="module")
def results():
    return run_fig6()


@pytest.mark.parametrize("label", list(FIG6_CONFIGS))
def test_fig6_measurement_phase(benchmark, label):
    """Benchmark the measurement phase itself (one fresh aged system per
    config; a handful of random-overwrite CPs)."""

    def setup():
        ap, vp = FIG6_CONFIGS[label]
        sim = build_aged_ssd_sim(aggregate_policy=ap, vol_policy=vp, seed=42)
        return (sim,), {}

    def run(sim):
        return measure_random_overwrite(sim, label, n_cps=5)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)


def test_fig6_tables(benchmark, results):
    """Emit the figure's series and check the paper's shape claims."""
    benchmark.pedantic(_emit_and_check, args=(results,), rounds=1, iterations=1)


def _emit_and_check(results):
    for table in fig6_tables(results):
        emit("fig6", table)

    both = results["both caches"]
    vol_only = results["FlexVol AA cache"]
    agg_only = results["Aggregate AA cache"]
    neither = results["neither (baseline)"]

    # Paper: cache-selected AAs are much emptier than the aggregate mean
    # (61% vs 45%) while random selection tracks the mean (46%).
    assert both.agg_selected_free > both.aggregate_free + 0.05
    assert abs(neither.agg_selected_free - neither.aggregate_free) < 0.08

    # Paper: RAID-aware cache cuts SSD write amplification (1.77->1.46).
    assert both.write_amplification < vol_only.write_amplification

    # Paper: FlexVol cache cuts WAFL CPU per op (309->293 us/op).
    assert both.cpu_us_per_op < agg_only.cpu_us_per_op

    # Paper: the aggregate cache improves peak throughput; the FlexVol
    # cache's benefit is CPU-side (its throughput gain needs a CPU-bound
    # regime — see EXPERIMENTS.md), so we assert its mechanism directly
    # and require it not to hurt capacity.
    assert both.capacity_ops > neither.capacity_ops
    assert agg_only.capacity_ops > neither.capacity_ops
    assert vol_only.cpu_us_per_op < neither.cpu_us_per_op * 0.99
    assert vol_only.capacity_ops > neither.capacity_ops * 0.97

    # Paper headline: both caches beat neither by a solid double-digit
    # margin (24% + 8% in the paper's testbed).
    gain = both.capacity_ops / neither.capacity_ops - 1
    emit("fig6", f"Peak-throughput gain, both caches vs neither: {gain:+.1%}")
    assert gain > 0.10

    # Latency at a common load the cached system absorbs but the
    # baseline cannot (paper: 0.56 ms vs 4.6 ms at 12k ops/s/client).
    both_curve = both.curve(FIG6_OFFERED)
    pre_knee = [i for i, p in enumerate(both_curve)
                if p.achieved_per_client == p.offered_per_client]
    idx = pre_knee[-1] if pre_knee else len(FIG6_OFFERED) - 1
    lat_both = both_curve[idx].latency_ms
    lat_neither = neither.curve(FIG6_OFFERED)[idx].latency_ms
    emit(
        "fig6",
        f"Latency at {FIG6_OFFERED[idx]:.0f} ops/s/client: both={lat_both:.2f} ms, "
        f"neither={lat_neither:.2f} ms",
    )
    assert lat_both < lat_neither
