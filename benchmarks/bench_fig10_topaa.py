"""Figure 10 (section 4.4): first-CP time after boot with/without TopAA.

(A) holds the FlexVol count at a fixed number while growing each
volume; (B) grows the number of fixed-size volumes.  In both cases the
time to complete the first CP is gated by rebuilding the AA caches:
with TopAA metafiles it requires reading 1 block per RAID group and 2
per volume (constant), without them it requires a linear walk of every
bitmap-metafile block (linear in capacity).

We report the modeled mount I/O time (metafile blocks read x per-block
read cost) plus one measured CP, and the measured wall-clock of the
cache build itself (a real popcount walk vs page decoding in this
process).  Both exhibit the paper's flat-vs-linear separation.

Run with ``pytest benchmarks/bench_fig10_topaa.py --benchmark-only -s``;
tables land in benchmarks/results/fig10.txt.  The experiment logic
lives in :mod:`repro.bench.experiments` (also reachable via
``python -m repro fig10``).
"""

from __future__ import annotations

import pytest

from repro.bench import emit
from repro.bench.experiments import fig10_tables, run_fig10


@pytest.fixture(scope="module")
def fig10_data():
    return run_fig10()


def test_fig10a_vol_size(benchmark, fig10_data):
    size_rows, series, count_rows, _ = benchmark.pedantic(
        lambda: fig10_data, rounds=1, iterations=1
    )
    t1, _t2 = fig10_tables(size_rows, count_rows)
    emit("fig10", t1)
    # TopAA: the mount component is flat in volume size (identical
    # block reads, near-identical modeled time); without TopAA the
    # bitmap walk grows linearly with capacity.
    assert series[(4, True)]["blocks_read"] == series[(32, True)]["blocks_read"]
    assert series[(32, True)]["modeled_ms"] < 1.3 * series[(4, True)]["modeled_ms"]
    assert series[(32, False)]["blocks_read"] > 4 * series[(4, False)]["blocks_read"]
    # At the largest size the TopAA first CP is far cheaper.
    assert series[(32, True)]["modeled_ms"] < 0.5 * series[(32, False)]["modeled_ms"]


def test_fig10b_vol_count(benchmark, fig10_data):
    size_rows, _, count_rows, series = benchmark.pedantic(
        lambda: fig10_data, rounds=1, iterations=1
    )
    _t1, t2 = fig10_tables(size_rows, count_rows)
    emit("fig10", t2)
    # No TopAA: the walk grows linearly with volume count; TopAA reads
    # only 2 blocks per volume (plus 1 per RAID group), more than an
    # order of magnitude less I/O at every point.
    assert series[(32, False)]["blocks_read"] > 4 * series[(4, False)]["blocks_read"]
    for n_vols in (4, 8, 16, 32):
        assert (
            series[(n_vols, False)]["blocks_read"]
            > 10 * series[(n_vols, True)]["blocks_read"]
        )
        assert series[(n_vols, True)]["modeled_ms"] < series[(n_vols, False)]["modeled_ms"]
    # The paper's headline: with TopAA the first CP is much faster on
    # the big configuration.
    assert series[(32, True)]["modeled_ms"] < 0.35 * series[(32, False)]["modeled_ms"]
