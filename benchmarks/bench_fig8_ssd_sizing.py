"""Figure 8 (section 4.3): AA sizing on SSDs.

An all-SSD aggregate aged to 85% fullness runs 4 KiB random
reads/writes under two AA sizes: the historical HDD sizing (4k
stripes — a fraction of the FTL's erase unit, Figure 4A) and the SSD
sizing (a multiple of the erase unit, Figure 4B).  The paper reports
~26% higher throughput, ~21% lower latency, and *halved* write
amplification for the large AA.

The FTL erase unit here is a 64 MiB superblock (16,384 blocks): vendor
FTLs stripe erase blocks across channels into large erase units, which
is what makes the historical 16 MiB-per-device AA a *partial* erase-
unit write.  See DESIGN.md's SSD substitution notes.

Run with ``pytest benchmarks/bench_fig8_ssd_sizing.py --benchmark-only
-s``; tables land in benchmarks/results/fig8.txt.  The experiment
logic lives in :mod:`repro.bench.experiments` (also reachable via
``python -m repro fig8``).
"""

from __future__ import annotations

from repro.bench import emit
from repro.bench.experiments import FIG8_OFFERED, fig8_tables, run_fig8


def test_fig8(benchmark):
    results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    small = results["HDD-sized AA (4k stripes)"]
    large = results["Large AA (2 erase units)"]

    for table in fig8_tables(results):
        emit("fig8", table)

    gain = large.capacity_ops / small.capacity_ops - 1
    wa_ratio = small.write_amplification / large.write_amplification
    emit(
        "fig8",
        f"Large-AA peak-throughput gain: {gain:+.1%} (paper: +26%)\n"
        f"Write-amplification ratio small/large: {wa_ratio:.2f}x (paper: ~2x)\n"
        f"Note: small AAs partially compensate via finer selection granularity\n"
        f"(selected-AA free {small.agg_selected_free:.2f} vs {large.agg_selected_free:.2f}), the trade-off\n"
        f"section 3.2 describes; see EXPERIMENTS.md for the magnitude discussion.",
    )

    # Paper shape: large AA wins throughput and latency; WA reduced
    # (paper: halved; our open-unit FTL model's reduction varies with
    # utilization but is always substantial and directionally identical).
    assert large.capacity_ops > 1.10 * small.capacity_ops
    assert wa_ratio > 1.25
    pk_small = small.peak(FIG8_OFFERED)
    pk_large = large.peak(FIG8_OFFERED)
    assert pk_large.latency_ms < pk_small.latency_ms or (
        pk_large.achieved_per_client > pk_small.achieved_per_client
    )
