#!/usr/bin/env python
"""Thin provisioning on an object-store aggregate.

The paper motivates the HBPS cache with thin provisioning: "a single
aggregate [can] house a collection of FlexVol volumes whose total sizes
exceed the physical storage ... a 128 TiB FlexVol volume has a million
AAs" (section 3.3.2), so tracking every AA in a heap per volume would
cost too much memory.  This example builds a Fabric-Pool-style
aggregate backed by a natively redundant object store, provisions
volumes whose *virtual* spaces vastly exceed physical capacity, and
shows that every AA cache still uses exactly two 4 KiB pages.

Run:  python examples/thin_provisioning.py
"""

from __future__ import annotations

import numpy as np

from repro import FileChurnWorkload, WaflSim
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.workloads import RandomOverwriteWorkload, fill_volumes


def main() -> None:
    physical_blocks = 32_768 * 24  # ~3 GiB of 4 KiB blocks
    # Each volume's virtual space is ~2x the whole aggregate: thin!
    vols = tuple(
        VolumeDecl(
            f"tenant{i}",
            logical_blocks=80_000,
            virtual_blocks=physical_blocks * 2,
        )
        for i in range(3)
    )
    sim = WaflSim.build(
        AggregateSpec(
            tiers=(TierSpec(label="s3", media="object", raid="none",
                            nblocks=physical_blocks),),
            volumes=vols,
        ),
        seed=5,
    )

    virtual_total = sum(v.nblocks for v in sim.vols.values())
    print(
        f"aggregate: {physical_blocks} physical blocks; "
        f"{virtual_total} virtual blocks provisioned "
        f"({virtual_total / physical_blocks:.1f}x overcommit)"
    )
    for name, vol in sim.vols.items():
        print(
            f"  {name}: {vol.topology.num_aas} AAs tracked by an HBPS cache "
            f"using {vol.cache.memory_bytes} bytes"
        )
    print(
        f"  physical store: {sim.store.topology.num_aas} AAs, "
        f"cache {sim.store.cache.memory_bytes} bytes (also HBPS — object "
        f"stores are natively redundant, so no RAID topology)"
    )

    # Exercise it: fill the tenants, churn with mixed file create/delete
    # and overwrites.
    fill_volumes(sim, ops_per_cp=16_384)
    print(f"\nafter fill: utilization {sim.utilization:.1%}")

    churn = FileChurnWorkload(sim, ops_per_cp=48, min_file_blocks=16,
                              max_file_blocks=1_024, seed=9)
    sim.run(churn, 15)
    over = RandomOverwriteWorkload(sim, ops_per_cp=8_192, seed=10)
    sim.run(over, 15)

    m = sim.metrics
    print(f"ran {len(m.cps)} CPs; metafile blocks dirtied/op: "
          f"{m.metafile_blocks_per_op:.4f}")
    for name, vol in sim.vols.items():
        sel = vol.selected_aa_free_fractions()
        used = vol.used_blocks
        print(
            f"  {name}: {used} virtual blocks live "
            f"({used / vol.nblocks:.1%} of virtual space), "
            f"selected-AA free {sel.mean():.1%}"
        )

    sim.verify_consistency()
    print("\nconsistency verified ✓")
    print("memory for all four AA caches combined: "
          f"{sum(v.cache.memory_bytes for v in sim.vols.values()) + sim.store.cache.memory_bytes} bytes")


if __name__ == "__main__":
    main()
