#!/usr/bin/env python
"""Quickstart: build a small WAFL-like system, run a workload, inspect
the allocation-area machinery.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import RandomOverwriteWorkload, WaflSim
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.workloads import fill_volumes


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build an aggregate: one RAID group of 4 data + 1 parity SSDs,
    #    hosting two FlexVol volumes.
    # ------------------------------------------------------------------
    spec = AggregateSpec(
        tiers=(
            TierSpec(
                label="ssd",
                media="ssd",
                ndata=4,
                blocks_per_disk=131_072,  # 512 MiB per device (4 KiB blocks)
            ),
        ),
        volumes=(
            VolumeDecl("projects", logical_blocks=120_000),
            VolumeDecl("homes", logical_blocks=80_000),
        ),
    )
    sim = WaflSim.build(spec, seed=7)
    print(f"built: {sim}")

    # ------------------------------------------------------------------
    # 2. Fill the volumes once (sequential writes), then age with random
    #    8 KiB overwrites — the COW pattern that fragments free space.
    # ------------------------------------------------------------------
    fill_volumes(sim, ops_per_cp=16_384)
    print(f"after fill: utilization = {sim.utilization:.1%}")

    workload = RandomOverwriteWorkload(sim, ops_per_cp=8_192, blocks_per_op=2, seed=1)
    sim.run(workload, n_cps=25)

    # ------------------------------------------------------------------
    # 3. Inspect what the AA caches did.
    # ------------------------------------------------------------------
    m = sim.metrics
    print(f"\nran {len(m.cps)} consistency points, {m.total_ops} client ops")
    print(f"WAFL CPU per op:        {m.cpu_us_per_op:8.1f} us")
    print(f"bottleneck device/op:   {m.device_us_per_op:8.1f} us")
    print(f"full-stripe fraction:   {m.full_stripe_fraction:8.1%}")
    print(f"mean write chain:       {m.mean_chain_length:8.1f} blocks")

    sel = sim.store.selected_aa_free_fractions()
    print(f"\naggregate free space:   {1 - sim.utilization:8.1%}")
    print(f"selected AAs free:      {sel.mean():8.1%}   <- the AA cache aims high")

    for name, vol in sim.vols.items():
        vsel = vol.selected_aa_free_fractions()
        hbps = vol.cache.hbps
        print(
            f"vol {name:10s}: selected-AA free {vsel.mean():6.1%}, "
            f"HBPS tracking {hbps.total_count} AAs in {vol.cache.memory_bytes} bytes"
        )

    was = [
        f"{d.name}={d.write_amplification:.2f}"
        for g in sim.store.groups
        for d in g.data_devices
    ]
    print(f"\nSSD write amplification: {', '.join(was)}")

    # The simulator cross-checks itself: bitmaps, maps, and scores agree.
    sim.verify_consistency()
    print("\nconsistency verified ✓")


if __name__ == "__main__":
    main()
