#!/usr/bin/env python
"""AA-cache study: reproduce the paper's Figure 6 comparison at
example scale.

Ages one all-SSD system per configuration (both caches / FlexVol only /
aggregate only / neither), measures the random-overwrite service
costs, and prints the latency-vs-throughput sweep — the same analysis
the full benchmark (benchmarks/bench_fig6_aa_cache.py) runs with
stricter assertions.

Run:  python examples/aa_cache_study.py
"""

from __future__ import annotations

import numpy as np

from repro import PolicyKind
from repro.bench import (
    NCLIENTS,
    build_aged_ssd_sim,
    fmt_table,
    measure_random_overwrite,
)

CONFIGS = {
    "both caches": (PolicyKind.CACHE, PolicyKind.CACHE),
    "FlexVol cache only": (PolicyKind.RANDOM, PolicyKind.CACHE),
    "aggregate cache only": (PolicyKind.CACHE, PolicyKind.RANDOM),
    "no AA caches": (PolicyKind.RANDOM, PolicyKind.RANDOM),
}


def main() -> None:
    results = {}
    for label, (agg_policy, vol_policy) in CONFIGS.items():
        print(f"aging + measuring: {label} ...")
        sim = build_aged_ssd_sim(
            aggregate_policy=agg_policy,
            vol_policy=vol_policy,
            n_groups=1,
            blocks_per_disk=65_536,  # small & quick for an example
            churn_factor=1.0,
            seed=21,
        )
        results[label] = measure_random_overwrite(sim, label, n_cps=15)

    print()
    print(
        fmt_table(
            ["config", "selected AA free", "SSD write amp", "CPU us/op",
             "device us/op", "peak ops/s"],
            [
                [r.label, r.agg_selected_free, r.write_amplification,
                 r.cpu_us_per_op, r.device_us_per_op, r.capacity_ops]
                for r in results.values()
            ],
            title="AA cache benefit (cf. paper section 4.1)",
        )
    )

    offered = np.linspace(1000, 10000, 10)
    rows = []
    for label, r in results.items():
        for p in r.curve(offered):
            rows.append([label, p.offered_per_client, p.achieved_per_client,
                         p.latency_ms])
    print()
    print(
        fmt_table(
            ["config", "offered/client", "achieved/client", "latency (ms)"],
            rows,
            title=f"Latency vs achieved throughput ({NCLIENTS} clients)",
        )
    )

    both = results["both caches"]
    none = results["no AA caches"]
    print(
        f"\nheadline: both caches sustain "
        f"{both.capacity_ops / none.capacity_ops - 1:+.1%} more load than none "
        f"(paper: ~+24% from the aggregate cache alone, +8% from the FlexVol cache)"
    )


if __name__ == "__main__":
    main()
