#!/usr/bin/env python
"""Flash Pool: a mixed SSD+HDD aggregate with hot/cold tiering.

"A Flash Pool aggregate is composed of one or more RAID groups of SSDs
together with several RAID groups of HDDs ... such configurations
store the 'hot' (often-accessed) data and metadata in the faster media
while using the slower media for the rest." (paper section 2.1)

This example builds one, runs a skewed overwrite workload, and shows
where the blocks land and what each tier's devices cost.

Run:  python examples/flash_pool.py
"""

from __future__ import annotations

import numpy as np

from repro import MediaType, RAIDGroupConfig, VolSpec, WaflSim
from repro.common.rng import make_rng
from repro.fs import CPBatch
from repro.fs.aggregate import RAIDStore
from repro.fs.flexvol import FlexVol
from repro.tiering import FlashPoolPolicy
from repro.workloads import RandomOverwriteWorkload, fill_volumes


def main() -> None:
    # A Flash Pool is ONE RAID store whose groups mix media — unlike
    # the multi-tier aggregates of repro.tiering, which compose one
    # store per tier.  Build it compositionally and attach the
    # hot/cold placement policy explicitly.
    groups = [
        RAIDGroupConfig(ndata=3, nparity=1, blocks_per_disk=65_536,
                        media=MediaType.SSD),
        RAIDGroupConfig(ndata=4, nparity=1, blocks_per_disk=131_072,
                        media=MediaType.HDD),
        RAIDGroupConfig(ndata=4, nparity=1, blocks_per_disk=131_072,
                        media=MediaType.HDD),
    ]
    rng = make_rng(17)
    store = RAIDStore(groups, seed=rng)
    store.tier_policy = FlashPoolPolicy()
    vols = {"db": FlexVol(VolSpec("db", logical_blocks=400_000), seed=rng)}
    sim = WaflSim(store, vols)
    print(f"Flash Pool aggregate: {[m.value for m in sim.store.media_kinds]}")

    # Cold fill: first writes go to the capacity (HDD) tier.
    fill_volumes(sim, ops_per_cp=16_384)
    ssd = sim.store.groups[0]
    print(f"\nafter fill: SSD tier holds "
          f"{ssd.metafile.bitmap.allocated_count} blocks (expect 0)")

    # Hot churn over 10% of the data: overwrites go to the SSD tier.
    hot = RandomOverwriteWorkload(sim, ops_per_cp=8_192, blocks_per_op=2,
                                  working_set_fraction=0.10, seed=4)
    sim.run(hot, 15)
    ssd_used = ssd.metafile.bitmap.allocated_count
    hdd_used = sum(g.metafile.bitmap.allocated_count
                   for g in sim.store.groups[1:])
    print(f"after hot churn: SSD tier {ssd_used} blocks, "
          f"HDD tier {hdd_used} blocks")

    busy = {
        "ssd": sum(d.stats.busy_us for d in ssd.devices) / 1e6,
        "hdd": sum(d.stats.busy_us
                   for g in sim.store.groups[1:] for d in g.devices) / 1e6,
    }
    print(f"device busy seconds: SSD tier {busy['ssd']:.2f}s, "
          f"HDD tier {busy['hdd']:.2f}s")
    print("the hot working set is absorbed by the SSD tier; the HDD tier "
          "only paid for the cold fill")

    sim.verify_consistency()
    print("\nconsistency verified ✓")


if __name__ == "__main__":
    main()
