#!/usr/bin/env python
"""Failover / mount walkthrough: the TopAA metafile in action.

Simulates the paper's section 3.4 scenario: a node "fails", its
partner mounts the aggregate, and write allocation must resume
immediately.  With TopAA metafiles the partner reads a handful of
4 KiB blocks to seed the AA caches; without them it must walk every
bitmap-metafile block.  The seeded caches then sustain client load
while the background rebuild completes.

Run:  python examples/failover_mount.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    RandomOverwriteWorkload,
    WaflSim,
    background_rebuild,
    export_topaa,
    simulate_mount,
)
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.workloads import fill_volumes, reset_measurement_state


def main() -> None:
    # A mid-size system: one RAID group, eight FlexVols.
    spec = AggregateSpec(
        tiers=(TierSpec(label="ssd", media="ssd", ndata=4,
                        blocks_per_disk=131_072),),
        volumes=tuple(
            VolumeDecl(f"vol{i}", logical_blocks=40_000) for i in range(8)
        ),
    )
    sim = WaflSim.build(spec, seed=13)
    fill_volumes(sim, ops_per_cp=16_384)
    sim.run(RandomOverwriteWorkload(sim, ops_per_cp=8_192, seed=2), 10)
    print(f"running system: {sim}")

    # WAFL persists the TopAA metafiles as part of normal CPs.
    image = export_topaa(sim)
    print(
        f"TopAA image: {len(image.group_blocks)} RAID-group block(s) + "
        f"{2 * len(image.vol_pages)} FlexVol blocks = {image.total_blocks} x 4 KiB"
    )

    # --- the node fails; the partner mounts from persisted state -------
    print("\n== mount WITH TopAA metafiles ==")
    rep = simulate_mount(sim, image)
    print(
        f"read {rep.blocks_read} metafile blocks, built {rep.caches_built} caches "
        f"in {rep.build_wall_s * 1000:.2f} ms wall "
        f"({rep.modeled_read_us / 1000:.1f} ms modeled read I/O)"
    )

    # Clients resume immediately on the seeded caches.
    reset_measurement_state(sim)
    wl = RandomOverwriteWorkload(sim, ops_per_cp=4_096, seed=3)
    sim.run(wl, 5)
    sel = sim.store.selected_aa_free_fractions()
    print(
        f"5 CPs served from seeded caches; selected-AA free {sel.mean():.1%} "
        f"(aggregate free {1 - sim.utilization:.1%})"
    )

    # The background scan completes the caches.
    rebuilt = background_rebuild(sim)
    print(f"background rebuild: {rebuilt}")
    sim.run(wl, 5)
    sim.verify_consistency()
    print("post-rebuild consistency ✓")

    # --- contrast: mounting without TopAA ------------------------------
    print("\n== mount WITHOUT TopAA metafiles ==")
    rep2 = simulate_mount(sim, None)
    print(
        f"walked {rep2.blocks_read} bitmap-metafile blocks "
        f"in {rep2.build_wall_s * 1000:.2f} ms wall "
        f"({rep2.modeled_read_us / 1000:.1f} ms modeled read I/O)"
    )
    ratio = rep2.modeled_read_us / max(rep.modeled_read_us, 1)
    print(f"\nTopAA reduced mount read I/O by {ratio:.0f}x on this small system;")
    print("the gap grows linearly with capacity (see benchmarks/bench_fig10_topaa.py).")


if __name__ == "__main__":
    main()
