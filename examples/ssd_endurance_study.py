#!/usr/bin/env python
"""SSD endurance study: AA size, write amplification, and device wear.

Section 3.2.2 argues that erase-unit-aligned AA sizing "reduces write
amplification ... SSDs come with a program/erase-cycles rating that
indicates their endurance, so minimizing write amplification is
critical to maximizing device lifetime."  This example sweeps the AA
size on an aged all-SSD aggregate and reports write amplification,
FTL relocation traffic, and erase-cycle consumption per unit of host
writes — the lifetime story behind Figure 8.

Run:  python examples/ssd_endurance_study.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import build_aged_ssd_sim, fmt_table, measure_random_overwrite

ERASE_UNIT = 8_192  # 32 MiB erase unit


def run_sizing(stripes_per_aa: int, label: str) -> dict:
    sim = build_aged_ssd_sim(
        n_groups=1,
        ndata=3,
        blocks_per_disk=262_144,
        stripes_per_aa=stripes_per_aa,
        erase_block_blocks=ERASE_UNIT,
        fill_fraction=0.70,
        churn_factor=1.0,
        seed=31,
    )
    measure_random_overwrite(sim, label, n_cps=20, seed=6)
    devs = [d for g in sim.store.groups for d in g.data_devices]
    host = sum(d.stats.host_blocks_written for d in devs)
    nand = sum(d.stats.device_blocks_written for d in devs)
    reloc = sum(d.relocated_blocks for d in devs)
    erases = sum(int(d.erase_counts.sum()) for d in devs)
    return {
        "label": label,
        "wa": nand / host,
        "reloc_per_host_block": reloc / host,
        "erases_per_gib_host": erases / (host * 4096 / 2**30),
    }


def main() -> None:
    rows = []
    for stripes_per_aa, label in [
        (2_048, "1/4 erase unit"),
        (8_192, "1 erase unit"),
        (32_768, "4 erase units"),
    ]:
        print(f"running {label} ...")
        r = run_sizing(stripes_per_aa, label)
        rows.append([r["label"], r["wa"], r["reloc_per_host_block"],
                     r["erases_per_gib_host"]])

    print()
    print(
        fmt_table(
            ["AA size", "write amp", "FTL relocations / host block",
             "erase cycles / GiB written"],
            rows,
            title="SSD endurance vs AA sizing (cf. paper sections 3.2.2, 4.3)",
        )
    )
    print(
        "\nLarger, erase-unit-aligned AAs cut relocation traffic and erase "
        "cycles,\nwhich is what let NetApp ship SSDs with lower "
        "overprovisioning (section 3.2.2)."
    )


if __name__ == "__main__":
    main()
