#!/usr/bin/env python
"""Snapshots and free-space dynamics.

WAFL snapshots pin blocks: client overwrites of snapped data cannot
free the old copies, and deleting a snapshot mass-frees blocks written
around the same epoch — the paper notes this "freeing of blocks due to
other internal activity, such as snapshot deletion, further adds to
[the] nonuniformity" that the AA cache exploits (section 4.1.1).

Run:  python examples/snapshot_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro import WaflSim
from repro.common.config import AggregateSpec, TierSpec, VolumeDecl
from repro.fs import CPBatch
from repro.workloads import RandomOverwriteWorkload, fill_volumes


def used(sim):
    return sim.store.nblocks - sim.store.free_count


def main() -> None:
    sim = WaflSim.build(
        AggregateSpec(
            tiers=(TierSpec(label="ssd", media="ssd", ndata=4,
                            blocks_per_disk=65_536),),
            # Virtual headroom sized for a full snapshot plus churn (the
            # "snapshot reserve"): pinned blocks keep their virtual VBNs.
            volumes=(VolumeDecl("home", logical_blocks=120_000,
                                virtual_blocks=524_288),),
        ),
        seed=23,
    )
    fill_volumes(sim, ops_per_cp=16_384)
    print(f"filled: {used(sim)} physical blocks in use")

    pinned = sim.create_snapshot("home", "nightly.0")
    print(f"snapshot 'nightly.0' pins {pinned} blocks (creation is metadata-only)")

    # A week of churn: overwrites can no longer free the snapped copies.
    churn = RandomOverwriteWorkload(sim, ops_per_cp=8_192, blocks_per_op=2, seed=2)
    sim.run(churn, 15)
    print(f"after churn: {used(sim)} blocks in use "
          f"(active data + snapshot divergence)")

    # Deleting a file tree does not release snapped blocks either.
    sim.engine.run_cp(CPBatch(deletes={"home": np.arange(60_000)}, ops=1))
    print(f"after deleting half the files: {used(sim)} blocks in use")

    # Snapshot deletion is the big, epoch-clustered free.
    g = sim.store.groups[0]
    before = g.topology.scores_from_bitmap(g.metafile.bitmap)
    released = sim.delete_snapshot("home", "nightly.0")
    sim.engine.run_cp(CPBatch(ops=0))  # the CP boundary applies the frees
    after = g.topology.scores_from_bitmap(g.metafile.bitmap)
    print(f"\ndeleting the snapshot released {released} physical blocks")
    deltas = (after - before)
    print(f"per-AA free-space gains: mean {deltas.mean():.0f}, "
          f"max {deltas.max()}, std {deltas.std():.0f} blocks")
    print("the gains are clustered (high std): exactly the nonuniform free "
          "space\nthe AA cache's emptiest-first selection exploits")

    sim.verify_consistency()
    print("\nconsistency verified ✓")


if __name__ == "__main__":
    main()
